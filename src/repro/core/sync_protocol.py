"""Data synchronization protocol (Algorithm 1).

Orders global transactions (client migrations) across all zones of a
cluster with *linear* top-level communication and a *majority-of-zones*
quorum. The top level follows Paxos (propose, promise, accept, accepted,
commit); every top-level message carries a ``2f+1`` intra-zone certificate
built by an endorsement round (:mod:`repro.core.endorsement`), which is
what confines Byzantine behaviour inside zones.

With the *stable leader* optimisation (multi-Paxos style, used in the
paper's evaluation) the propose/promise leader-election phases are
skipped and the protocol runs accept → accepted → commit.

The global primary *batches* migration requests: one ballot orders a batch
of requests, amortising the endorsement rounds and WAN phases — the same
batching every PBFT deployment applies to local transactions.

Execution ordering: each message names ``prev_ballot``, the latest ballot
its sender had accepted; a COMMIT executes only after its predecessor, so
all nodes apply migrations to the meta-data in the same order. Missing
predecessors are fetched with RESPONSE-QUERY (paper §V-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.metadata import MigrationOutcome
from repro.crypto.digest import digest
from repro.messages.base import Signed, verify_signed
from repro.messages.client import ClientReply, MigrationRequest
from repro.messages.query import ResponseQuery
from repro.messages.trace import trace_id
from repro.messages.sync import (GENESIS_BALLOT, Accept, Accepted, Ballot,
                                 CheckpointRef, GlobalCommit, Promise, Propose,
                                 accept_body, accepted_body, commit_body,
                                 promise_body, propose_body)
from repro.sim.rng import derive_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import ZiziphusNode

__all__ = ["SyncConfig", "SyncEngine", "GlobalTxnState"]


@dataclass
class SyncConfig:
    """Tunables for the data synchronization protocol."""

    #: Multi-Paxos stable leader: skip the propose/promise phases.
    stable_leader: bool = True
    #: Ablation: run the PBFT prepare round in *every* endorsement (the
    #: paper's optimisation is to skip it once the ballot is certified).
    full_prepare_everywhere: bool = False
    #: Global batching: migrations ordered per ballot (1 disables).
    global_batch_size: int = 8
    global_batch_timeout_ms: float = 2.0
    #: Follower timeout waiting for COMMIT after sending ACCEPTED.
    commit_timeout_ms: float = 4_000.0
    #: Initiator timeout waiting for a majority of PROMISE/ACCEPTED.
    phase_timeout_ms: float = 4_000.0
    #: Non-primary timeout waiting for the primary to start an endorsement.
    watch_timeout_ms: float = 2_000.0
    #: Generate a local checkpoint whenever a migration request arrives
    #: (the paper's lazy-synchronization policy).
    checkpoint_on_migration: bool = True
    #: Cap retained committed envelopes (response-query replay window).
    commit_history: int = 512


# ----------------------------------------------------------------------
# Endorsement payload contexts (what intra-zone nodes validate and sign)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProposeContext:
    """Endorsed by the initiator zone before PROPOSE goes out."""

    ballot: Ballot
    requests: tuple[Signed, ...]


@dataclass(frozen=True)
class PromiseContext:
    """Endorsed by a follower zone before PROMISE goes back."""

    ballot: Ballot
    prev_ballot: Ballot
    zone_id: str
    propose: Propose


@dataclass(frozen=True)
class AcceptContext:
    """Endorsed by the initiator zone before ACCEPT goes out.

    Carries the PROMISE envelopes (q1, q2, ... in the paper's pre-prepare)
    so zone nodes can check the majority quorum themselves. Empty under
    the stable-leader optimisation.
    """

    ballot: Ballot
    prev_ballot: Ballot
    requests: tuple[Signed, ...]
    promises: tuple[Signed, ...]


@dataclass(frozen=True)
class AcceptedContext:
    """Endorsed by a follower zone before ACCEPTED goes back."""

    ballot: Ballot
    prev_ballot: Ballot
    zone_id: str
    accept: Accept


@dataclass(frozen=True)
class CommitContext:
    """Endorsed by the initiator zone before COMMIT goes out."""

    ballot: Ballot
    prev_ballot: Ballot
    requests: tuple[Signed, ...]
    accepteds: tuple[Signed, ...]


@dataclass
class GlobalTxnState:
    """Per-ballot protocol state on one node."""

    ballot: Ballot
    batch: tuple[Signed, ...] = ()
    request_digest: bytes | None = None
    prev_ballot: Ballot | None = None
    phase: str = "start"
    promises: dict[str, Signed] = field(default_factory=dict)
    accepteds: dict[str, Signed] = field(default_factory=dict)
    accept_env: Signed | None = None
    commit_env: Signed | None = None
    committed: bool = False
    executed: bool = False
    commit_timer: Any = None
    phase_timer: Any = None
    watch_timer: Any = None


def batch_digest(batch: tuple[Signed, ...]) -> bytes:
    """Canonical digest identifying a batch of signed requests."""
    return digest(tuple(env.payload for env in batch))


class SyncEngine:
    """Runs Algorithm 1 for one node within one set of participant zones."""

    def __init__(self, node: "ZiziphusNode", zone_ids: list[str],
                 config: SyncConfig | None = None,
                 instance_prefix: str = "gsync",
                 engine=None) -> None:
        self.node = node
        self.directory = node.directory
        self.zone_ids = list(zone_ids)
        self.config = config or SyncConfig()
        self.prefix = instance_prefix
        self.my_zone = node.zone_info
        if engine is None:
            from repro.consensus import STABLE_INITIATOR
            engine = STABLE_INITIATOR
        #: Global consensus backend steering ballot assignment and the
        #: post-view-change failover policy (repro.consensus).
        self.engine = engine
        self._rng = derive_rng(0, "sync", node.node_id)

        self.highest_seen = 0
        self.last_accepted = GENESIS_BALLOT
        self.chain_tail = GENESIS_BALLOT      # initiator-side ordering chain
        #: Lemma 5.5 guard: the zone endorses at most one ballot per global
        #: sequence number (allows pipelined instances, forbids conflicts).
        self.accepted_seqs: dict[int, str] = {}
        self.txns: dict[Ballot, GlobalTxnState] = {}
        #: Per-ballot execution results: client id -> result tuple.
        self.executed_results: dict[Ballot, dict[str, Any]] = {}
        self.pending_commits: dict[Ballot, list[Ballot]] = {}
        self.request_dedup: dict[tuple[str, int], Ballot] = {}
        #: Requests this node has seen inside any ballot's batch; lets
        #: non-primaries tell "handled" from "dropped by our primary".
        self.seen_requests: set[tuple[str, int]] = set()
        self._batch_buffer: dict[bytes, Signed] = {}
        self._batch_timer = None
        self._watched_requests: dict[bytes, Any] = {}
        self._query_log: dict[tuple[Ballot, str], set[str]] = {}
        self._commit_order: list[Ballot] = []
        #: Cross-cluster hook: ballots whose commit phase is held until the
        #: peer cluster is PREPARED (callback receives the txn state).
        self.hold_commit: dict[Ballot, Any] = {}
        self.migrations_executed = 0
        #: Commuting-execution mode only: per-client request-timestamp
        #: high-water mark of *applied* migrations. A ballot carrying an
        #: older request of the client is superseded (skipped), which
        #: makes application order-insensitive when concurrent initiators
        #: fork the ``prev_ballot`` chain into a tree.
        self._client_exec_ts: dict[str, int] = {}

        host = node
        host.register_handler(MigrationRequest, self._on_migration_request)
        host.register_handler(Propose, self._on_propose)
        host.register_handler(Promise, self._on_promise)
        host.register_handler(Accept, self._on_accept)
        host.register_handler(Accepted, self._on_accepted)
        host.register_handler(GlobalCommit, self._on_commit)
        host.register_handler(ResponseQuery, self._on_response_query)

        endorse = node.endorsement
        endorse.register_kind(f"{self.prefix}-propose",
                              validator=self._validate_propose_ctx)
        endorse.register_kind(f"{self.prefix}-promise",
                              validator=self._validate_promise_ctx)
        endorse.register_kind(f"{self.prefix}-accept",
                              validator=self._validate_accept_ctx)
        endorse.register_kind(f"{self.prefix}-accepted",
                              validator=self._validate_accepted_ctx)
        endorse.register_kind(f"{self.prefix}-commit",
                              validator=self._validate_commit_ctx)
        node.replica.on_view_change.append(self._on_local_view_change)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @property
    def host(self):
        """The hosting node (send/timer surface)."""
        return self.node

    def _instance(self, phase: str, ballot: Ballot) -> str:
        return f"{self.prefix}-{phase}/{ballot.seq}.{ballot.zone_id}"

    def _obs(self):
        obs = self.host.obs
        return obs if obs is not None and obs.enabled else None

    @staticmethod
    def _bkey(ballot: Ballot) -> str:
        return f"{ballot.seq}.{ballot.zone_id}"

    def _emit_cert(self, msg: str, zone_id: str, cert, valid: bool,
                   src: str, ref: str) -> None:
        """Report a certificate check to the conformance monitor."""
        obs = self._obs()
        if obs is not None:
            obs.emit_cert(self.host.sim.now, self.node.node_id, msg,
                          zone_id, cert, valid, src=src, ref=ref)

    def _txn(self, ballot: Ballot) -> GlobalTxnState:
        txn = self.txns.get(ballot)
        if txn is None:
            txn = GlobalTxnState(ballot=ballot)
            self.txns[ballot] = txn
        return txn

    def _is_zone_primary(self) -> bool:
        return self.node.replica.is_primary

    @property
    def majority(self) -> int:
        """Majority-of-zones quorum Q_M."""
        return self.directory.majority_quorum(self.zone_ids)

    def _other_zone_nodes(self) -> list[str]:
        return [m for zid in self.zone_ids if zid != self.my_zone.zone_id
                for m in self.directory.zone(zid).members]

    def _all_nodes(self) -> list[str]:
        return self.directory.nodes_of_zones(self.zone_ids)

    def _use_prepare(self, assigning_ballot: bool) -> bool:
        if self.config.full_prepare_everywhere:
            return True
        return assigning_ballot

    def _my_checkpoint_ref(self) -> CheckpointRef | None:
        stable = self.node.replica.checkpoints.stable
        if stable is None:
            return None
        return CheckpointRef(zone_id=self.my_zone.zone_id,
                             sequence=stable.sequence,
                             state_digest=stable.state_digest,
                             snapshot=stable.snapshot or {})

    def result_for(self, ballot: Ballot, client_id: str) -> Any:
        """Execution result of one request within a committed ballot."""
        results = self.executed_results.get(ballot)
        if results is None:
            return None
        return results.get(client_id)

    def _mark_stale_sources(self, batch: tuple[Signed, ...]) -> None:
        for env in batch:
            request = env.payload
            self.seen_requests.add((request.sender, request.timestamp))
            if request.operation and request.operation[0] == "migrate" and \
                    request.source_zone == self.my_zone.zone_id:
                self.node.locks.mark_stale(request.sender)

    def _valid_batch(self, batch: tuple[Signed, ...]) -> bool:
        for env in batch:
            if not isinstance(env.payload, MigrationRequest):
                return False
            if not verify_signed(self.host.keys, env):
                return False
        return True

    # ------------------------------------------------------------------
    # Client request intake and batching (initiator zone)
    # ------------------------------------------------------------------
    def _on_migration_request(self, sender: str, request: MigrationRequest,
                              envelope: Signed) -> None:
        key = (request.sender, request.timestamp)
        done = self.request_dedup.get(key)
        if done is not None:
            result = self.result_for(done, request.sender)
            if result is not None:
                self._reply_to_client(request, result)
            return
        if not self._is_zone_primary():
            self.host.forward(self.node.replica.primary, envelope)
            self._watch_request(envelope)
            return
        request_digest = digest(request)
        if request_digest in self._batch_buffer:
            return
        self._batch_buffer[request_digest] = envelope
        if len(self._batch_buffer) >= self.config.global_batch_size:
            self._flush_batch()
        elif self._batch_timer is None:
            self._batch_timer = self.host.set_timer(
                self.config.global_batch_timeout_ms, self._on_batch_timeout)

    def _on_batch_timeout(self) -> None:
        self._batch_timer = None
        if self._batch_buffer:
            self._flush_batch()

    def _flush_batch(self) -> None:
        if self._batch_timer is not None:
            self._batch_timer.cancel()
            self._batch_timer = None
        batch = tuple(self._batch_buffer.values())
        self._batch_buffer.clear()
        self.start_global_txn(batch)

    def start_global_txn(self, batch, on_ready_to_commit=None) -> Ballot:
        """Assign a ballot to a batch and launch the protocol (primary only).

        ``on_ready_to_commit``, if given, is called with the transaction
        state instead of entering the commit phase once a majority of
        zones have accepted — the cross-cluster protocol uses this to wait
        for the peer cluster's PREPARED message first.
        """
        if isinstance(batch, Signed):
            batch = (batch,)
        batch = tuple(batch)
        ballot = self.engine.propose(self, batch)
        self.highest_seen = max(self.highest_seen, ballot.seq)
        for env in batch:
            request = env.payload
            self.request_dedup[(request.sender, request.timestamp)] = ballot
        txn = self._txn(ballot)
        txn.batch = batch
        txn.request_digest = batch_digest(batch)
        if on_ready_to_commit is not None:
            self.hold_commit[ballot] = on_ready_to_commit
        obs = self._obs()
        if obs is not None:
            obs.count("sync.txns")
            obs.span_open(self.host.sim.now, "global-txn", self._bkey(ballot),
                          node=self.node.node_id, batch=len(batch))
            obs.emit(self.host.sim.now, "sync.start",
                     node=self.node.node_id, ballot=self._bkey(ballot),
                     batch=len(batch), stable=self.config.stable_leader)
            if obs.causal:
                # Bind the ballot (and through it every sync-phase and
                # endorse span keyed by it) to the traced requests.
                obs.emit(self.host.sim.now, "trace.link",
                         node=self.node.node_id, scope="sync",
                         key=self._bkey(ballot),
                         traces=[trace_id(env.payload) for env in batch])
        if self.config.checkpoint_on_migration:
            self.node.replica.checkpoints.generate(
                self.node.replica.last_executed)
        if self.config.stable_leader:
            self._start_accept_phase(txn, promises=())
        else:
            self._start_propose_phase(txn)
        return ballot

    def _watch_request(self, envelope: Signed) -> None:
        request_digest = digest(envelope.payload)
        if request_digest in self._watched_requests:
            return
        timer = self.host.set_timer(self.config.watch_timeout_ms,
                                    self._on_request_watch_expired,
                                    request_digest, envelope.payload)
        self._watched_requests[request_digest] = timer

    def _on_request_watch_expired(self, request_digest: bytes,
                                  request: MigrationRequest) -> None:
        self._watched_requests.pop(request_digest, None)
        key = (request.sender, request.timestamp)
        if key in self.request_dedup or key in self.seen_requests:
            return  # some ballot picked the request up
        self.node.replica.view_changes.initiate(self.node.replica.view + 1)

    # ------------------------------------------------------------------
    # PROPOSE phase (initiator zone)
    # ------------------------------------------------------------------
    def _start_propose_phase(self, txn: GlobalTxnState) -> None:
        txn.phase = "propose"
        obs = self._obs()
        if obs is not None:
            obs.span_open(self.host.sim.now, "propose",
                          self._bkey(txn.ballot), node=self.node.node_id)
        context = ProposeContext(ballot=txn.ballot, requests=txn.batch)
        body = propose_body(txn.ballot, txn.request_digest)
        self.node.endorsement.lead(
            self._instance("propose", txn.ballot), context, body,
            use_prepare=self._use_prepare(assigning_ballot=True),
            on_cert=lambda cert, b=txn.ballot: self._send_propose(b, cert))

    def _send_propose(self, ballot: Ballot, cert) -> None:
        txn = self._txn(ballot)
        propose = Propose(view=self.node.replica.view, ballot=ballot,
                          requests=txn.batch, cert=cert,
                          sender=self.node.node_id)
        txn.phase = "promise-wait"
        obs = self._obs()
        if obs is not None:
            now = self.host.sim.now
            obs.span_close(now, "propose", self._bkey(ballot),
                           node=self.node.node_id)
            obs.span_open(now, "promise", self._bkey(ballot),
                          node=self.node.node_id)
        self.host.multicast_signed(self._other_zone_nodes(), propose)
        self._arm_phase_timer(txn, "promise-wait")

    def _validate_propose_ctx(self, instance: str, context: Any,
                              endorse_digest: bytes) -> bool:
        if not isinstance(context, ProposeContext):
            return False
        if not self._valid_batch(context.requests):
            return False
        if endorse_digest != propose_body(context.ballot,
                                          batch_digest(context.requests)):
            return False
        if context.ballot.zone_id != self.my_zone.zone_id:
            return False
        if not self.engine.valid_assignment(context.ballot, self.zone_ids):
            return False
        if context.ballot.seq <= self.highest_seen - 1:
            return False  # stale/duplicate sequence from the primary
        self.highest_seen = max(self.highest_seen, context.ballot.seq)
        txn = self._txn(context.ballot)
        txn.batch = context.requests
        txn.request_digest = batch_digest(context.requests)
        return True

    # ------------------------------------------------------------------
    # PROMISE phase (follower zones)
    # ------------------------------------------------------------------
    def _on_propose(self, sender: str, propose: Propose,
                    envelope: Signed) -> None:
        body = propose_body(propose.ballot, batch_digest(propose.requests))
        valid = self.directory.cert_valid(propose.cert, body,
                                          propose.ballot.zone_id)
        self._emit_cert("propose", propose.ballot.zone_id, propose.cert,
                        valid, sender, self._bkey(propose.ballot))
        if not valid:
            return
        if propose.ballot.seq <= self.highest_seen and \
                propose.ballot not in self.txns:
            return  # stale proposal; initiator will retry with a higher n
        if not self._valid_batch(propose.requests):
            return
        self.highest_seen = max(self.highest_seen, propose.ballot.seq)
        txn = self._txn(propose.ballot)
        txn.batch = propose.requests
        txn.request_digest = batch_digest(propose.requests)
        self._mark_stale_sources(propose.requests)
        if self.config.checkpoint_on_migration:
            self.node.replica.checkpoints.generate(
                self.node.replica.last_executed)
        instance = self._instance("promise", propose.ballot)
        if self._is_zone_primary():
            context = PromiseContext(ballot=propose.ballot,
                                     prev_ballot=self.last_accepted,
                                     zone_id=self.my_zone.zone_id,
                                     propose=propose)
            body = promise_body(propose.ballot, self.last_accepted,
                                self.my_zone.zone_id, txn.request_digest)
            self.node.endorsement.lead(
                instance, context, body,
                use_prepare=self._use_prepare(assigning_ballot=False),
                on_cert=lambda cert, b=propose.ballot,
                prev=self.last_accepted: self._send_promise(b, prev, cert))
        else:
            self._watch_endorsement(txn, instance)

    def _send_promise(self, ballot: Ballot, prev: Ballot, cert) -> None:
        txn = self._txn(ballot)
        promise = Promise(view=self.node.replica.view, ballot=ballot,
                          prev_ballot=prev, zone_id=self.my_zone.zone_id,
                          request_digest=txn.request_digest, cert=cert,
                          sender=self.node.node_id)
        txn.phase = "promised"
        obs = self._obs()
        if obs is not None:
            obs.emit(self.host.sim.now, "sync.promise",
                     node=self.node.node_id, ballot=self._bkey(ballot),
                     zone=self.my_zone.zone_id)
        initiator_nodes = self.directory.zone(ballot.zone_id).members
        self.host.multicast_signed(initiator_nodes, promise)

    def _validate_promise_ctx(self, instance: str, context: Any,
                              endorse_digest: bytes) -> bool:
        if not isinstance(context, PromiseContext):
            return False
        if context.zone_id != self.my_zone.zone_id:
            return False
        propose = context.propose
        body = propose_body(propose.ballot, batch_digest(propose.requests))
        if not self.directory.cert_valid(propose.cert, body,
                                         propose.ballot.zone_id):
            return False
        expected = promise_body(context.ballot, context.prev_ballot,
                                context.zone_id,
                                batch_digest(propose.requests))
        if endorse_digest != expected:
            return False
        if context.prev_ballot >= context.ballot:
            return False
        self.highest_seen = max(self.highest_seen, context.ballot.seq)
        txn = self._txn(context.ballot)
        txn.batch = propose.requests
        txn.request_digest = batch_digest(propose.requests)
        self._mark_stale_sources(propose.requests)
        return True

    # ------------------------------------------------------------------
    # ACCEPT phase (initiator zone)
    # ------------------------------------------------------------------
    def _on_promise(self, sender: str, promise: Promise,
                    envelope: Signed) -> None:
        if self.my_zone.zone_id != promise.ballot.zone_id:
            return
        body = promise_body(promise.ballot, promise.prev_ballot,
                            promise.zone_id, promise.request_digest)
        valid = self.directory.cert_valid(promise.cert, body,
                                          promise.zone_id)
        self._emit_cert("promise", promise.zone_id, promise.cert, valid,
                        sender, self._bkey(promise.ballot))
        if not valid:
            return
        txn = self._txn(promise.ballot)
        txn.promises[promise.zone_id] = envelope
        if not self._is_zone_primary() or txn.phase != "promise-wait":
            return
        # +1: the initiator zone's own (certified) agreement counts.
        if len(txn.promises) + 1 >= self.majority:
            self._cancel_phase_timer(txn)
            obs = self._obs()
            if obs is not None:
                obs.span_close(self.host.sim.now, "promise",
                               self._bkey(promise.ballot),
                               node=self.node.node_id,
                               zones=len(txn.promises) + 1)
            self._start_accept_phase(txn,
                                     promises=tuple(txn.promises.values()))

    def _start_accept_phase(self, txn: GlobalTxnState,
                            promises: tuple[Signed, ...]) -> None:
        prev = max([self.chain_tail, self.last_accepted]
                   + [env.payload.prev_ballot for env in promises])
        txn.prev_ballot = prev
        txn.phase = "accept"
        obs = self._obs()
        if obs is not None:
            obs.span_open(self.host.sim.now, "accept",
                          self._bkey(txn.ballot), node=self.node.node_id)
        self.chain_tail = txn.ballot
        self.last_accepted = max(self.last_accepted, txn.ballot)
        context = AcceptContext(ballot=txn.ballot, prev_ballot=prev,
                                requests=txn.batch, promises=promises)
        body = accept_body(txn.ballot, prev, txn.request_digest)
        assigning = self.config.stable_leader  # ballot first certified here
        # Armed before lead(): the endorsement can wedge (a crashed
        # primary's conflicting assignment holds members' votes hostage
        # until a newer view overrides it), and only a retry re-multicasts
        # the pre-prepare. A synchronous cert re-arms for accepted-wait.
        self._arm_phase_timer(txn, "accept")
        self.node.endorsement.lead(
            self._instance("accept", txn.ballot), context, body,
            use_prepare=self._use_prepare(assigning_ballot=assigning),
            on_cert=lambda cert, b=txn.ballot: self._send_accept(b, cert))

    def _send_accept(self, ballot: Ballot, cert) -> None:
        txn = self._txn(ballot)
        piggyback = txn.batch if self.config.stable_leader else ()
        accept = Accept(view=self.node.replica.view, ballot=ballot,
                        prev_ballot=txn.prev_ballot,
                        request_digest=txn.request_digest, cert=cert,
                        sender=self.node.node_id, requests=piggyback)
        txn.phase = "accepted-wait"
        txn.accept_env = Signed(accept, self.host.keys.sign(
            self.node.node_id, digest(accept)))
        obs = self._obs()
        if obs is not None:
            now = self.host.sim.now
            obs.span_close(now, "accept", self._bkey(ballot),
                           node=self.node.node_id)
            obs.span_open(now, "accepted", self._bkey(ballot),
                          node=self.node.node_id)
        self.host.multicast_signed(self._other_zone_nodes(), accept)
        self._arm_phase_timer(txn, "accepted-wait")

    def _validate_accept_ctx(self, instance: str, context: Any,
                             endorse_digest: bytes) -> bool:
        if not isinstance(context, AcceptContext):
            return False
        if context.ballot.zone_id != self.my_zone.zone_id:
            return False
        if not self.engine.valid_assignment(context.ballot, self.zone_ids):
            return False
        if not self._valid_batch(context.requests):
            return False
        request_digest = batch_digest(context.requests)
        if endorse_digest != accept_body(context.ballot, context.prev_ballot,
                                         request_digest):
            return False
        if not self.config.stable_leader:
            # Check the majority of promises the primary claims to have.
            zones = set()
            for env in context.promises:
                if not verify_signed(self.host.keys, env):
                    continue
                promise = env.payload
                if promise.ballot != context.ballot:
                    continue
                body = promise_body(promise.ballot, promise.prev_ballot,
                                    promise.zone_id, promise.request_digest)
                if self.directory.cert_valid(promise.cert, body,
                                             promise.zone_id):
                    zones.add(promise.zone_id)
            if len(zones) + 1 < self.majority:
                return False
        rival = self.accepted_seqs.get(context.ballot.seq)
        if rival is not None and rival != context.ballot.zone_id:
            return False  # Lemma 5.5 guard
        self.accepted_seqs[context.ballot.seq] = context.ballot.zone_id
        self.highest_seen = max(self.highest_seen, context.ballot.seq)
        self.last_accepted = max(self.last_accepted, context.ballot)
        txn = self._txn(context.ballot)
        txn.batch = context.requests
        txn.request_digest = request_digest
        txn.prev_ballot = context.prev_ballot
        self._mark_stale_sources(context.requests)
        return True

    # ------------------------------------------------------------------
    # ACCEPTED phase (follower zones)
    # ------------------------------------------------------------------
    def _on_accept(self, sender: str, accept: Accept,
                   envelope: Signed) -> None:
        body = accept_body(accept.ballot, accept.prev_ballot,
                           accept.request_digest)
        valid = self.directory.cert_valid(accept.cert, body,
                                          accept.ballot.zone_id)
        self._emit_cert("accept", accept.ballot.zone_id, accept.cert,
                        valid, sender, self._bkey(accept.ballot))
        if not valid:
            return
        if not self.engine.valid_assignment(accept.ballot, self.zone_ids):
            return  # sequence not assignable by that zone under this backend
        rival = self.accepted_seqs.get(accept.ballot.seq)
        if rival is not None and rival != accept.ballot.zone_id:
            return  # Lemma 5.5: never endorse two ballots at one sequence
        txn = self._txn(accept.ballot)
        if txn.phase in ("accepted", "committed") or txn.committed:
            # Duplicate ACCEPT: the initiator zone is probing because our
            # ACCEPTED never arrived (lost to a partition, or the initiator
            # primary that collected it crashed). Re-send the certificate.
            self._relead_accepted(accept.ballot)
            return
        self.highest_seen = max(self.highest_seen, accept.ballot.seq)
        txn.prev_ballot = accept.prev_ballot
        txn.request_digest = accept.request_digest
        if self.config.checkpoint_on_migration:
            # §V-B: zones checkpoint whenever a migration reaches them
            # (under the stable leader the ACCEPT is the first contact).
            self.node.replica.checkpoints.generate(
                self.node.replica.last_executed)
        if accept.requests and not txn.batch:
            if not self._valid_batch(accept.requests):
                return
            if batch_digest(accept.requests) != accept.request_digest:
                return
            txn.batch = accept.requests
        self._mark_stale_sources(txn.batch)
        instance = self._instance("accepted", accept.ballot)
        if self._is_zone_primary():
            context = AcceptedContext(ballot=accept.ballot,
                                      prev_ballot=accept.prev_ballot,
                                      zone_id=self.my_zone.zone_id,
                                      accept=accept)
            self.node.endorsement.lead(
                instance, context,
                accepted_body(accept.ballot, accept.prev_ballot,
                              self.my_zone.zone_id, accept.request_digest),
                use_prepare=self._use_prepare(assigning_ballot=False),
                on_cert=lambda cert, b=accept.ballot: self._send_accepted(b, cert))
        else:
            self._watch_endorsement(txn, instance)

    def _send_accepted(self, ballot: Ballot, cert) -> None:
        txn = self._txn(ballot)
        txn.phase = "accepted"
        self.last_accepted = max(self.last_accepted, ballot)
        self.accepted_seqs[ballot.seq] = ballot.zone_id
        accepted = Accepted(view=self.node.replica.view, ballot=ballot,
                            prev_ballot=txn.prev_ballot,
                            zone_id=self.my_zone.zone_id,
                            request_digest=txn.request_digest, cert=cert,
                            checkpoint=self._my_checkpoint_ref(),
                            sender=self.node.node_id)
        obs = self._obs()
        if obs is not None:
            obs.emit(self.host.sim.now, "sync.accepted",
                     node=self.node.node_id, ballot=self._bkey(ballot),
                     zone=self.my_zone.zone_id)
        initiator_nodes = self.directory.zone(ballot.zone_id).members
        self.host.multicast_signed(initiator_nodes, accepted)
        self._arm_commit_timer(txn)

    def _validate_accepted_ctx(self, instance: str, context: Any,
                               endorse_digest: bytes) -> bool:
        if not isinstance(context, AcceptedContext):
            return False
        if context.zone_id != self.my_zone.zone_id:
            return False
        accept = context.accept
        body = accept_body(accept.ballot, accept.prev_ballot,
                           accept.request_digest)
        if not self.directory.cert_valid(accept.cert, body,
                                         accept.ballot.zone_id):
            return False
        expected = accepted_body(context.ballot, context.prev_ballot,
                                 context.zone_id, accept.request_digest)
        if endorse_digest != expected:
            return False
        rival = self.accepted_seqs.get(context.ballot.seq)
        if rival is not None and rival != context.ballot.zone_id:
            return False  # Lemma 5.5 guard
        self.accepted_seqs[context.ballot.seq] = context.ballot.zone_id
        self.highest_seen = max(self.highest_seen, context.ballot.seq)
        self.last_accepted = max(self.last_accepted, context.ballot)
        txn = self._txn(context.ballot)
        txn.prev_ballot = context.prev_ballot
        txn.request_digest = accept.request_digest
        if accept.requests and not txn.batch and \
                self._valid_batch(accept.requests) and \
                batch_digest(accept.requests) == accept.request_digest:
            txn.batch = accept.requests
        self._mark_stale_sources(txn.batch)
        self._arm_commit_timer(txn)
        return True

    # ------------------------------------------------------------------
    # COMMIT phase (initiator zone)
    # ------------------------------------------------------------------
    def _on_accepted(self, sender: str, accepted: Accepted,
                     envelope: Signed) -> None:
        if self.my_zone.zone_id != accepted.ballot.zone_id:
            return
        body = accepted_body(accepted.ballot, accepted.prev_ballot,
                             accepted.zone_id, accepted.request_digest)
        valid = self.directory.cert_valid(accepted.cert, body,
                                          accepted.zone_id)
        self._emit_cert("accepted", accepted.zone_id, accepted.cert,
                        valid, sender, self._bkey(accepted.ballot))
        if not valid:
            return
        txn = self._txn(accepted.ballot)
        txn.accepteds[accepted.zone_id] = envelope
        if not self._is_zone_primary() or txn.phase != "accepted-wait":
            return
        if len(txn.accepteds) + 1 >= self.majority:
            self._cancel_phase_timer(txn)
            obs = self._obs()
            if obs is not None:
                obs.span_close(self.host.sim.now, "accepted",
                               self._bkey(accepted.ballot),
                               node=self.node.node_id,
                               zones=len(txn.accepteds) + 1)
            held = self.hold_commit.get(accepted.ballot)
            if held is not None:
                txn.phase = "held"
                held(txn)
            else:
                self._start_commit_phase(txn)

    def prepare_commit_cert(self, txn: GlobalTxnState, on_cert) -> None:
        """Run the commit-phase endorsement but hand the certificate to
        ``on_cert`` instead of broadcasting COMMIT (cross-cluster path)."""
        context = CommitContext(ballot=txn.ballot, prev_ballot=txn.prev_ballot,
                                requests=txn.batch,
                                accepteds=tuple(txn.accepteds.values()))
        body = commit_body(txn.ballot, txn.prev_ballot, txn.request_digest)
        self.node.endorsement.lead(
            self._instance("commit", txn.ballot), context, body,
            use_prepare=self._use_prepare(assigning_ballot=False),
            on_cert=on_cert)

    def ingest_commit(self, commit: GlobalCommit) -> None:
        """Accept a COMMIT delivered out-of-band (synthesised from a
        cross-cluster CROSS-COMMIT); runs the normal validation path."""
        envelope = Signed(commit, self.host.keys.sign(self.node.node_id,
                                                      digest(commit)))
        self._on_commit(commit.sender, commit, envelope)

    def _start_commit_phase(self, txn: GlobalTxnState) -> None:
        txn.phase = "commit"
        obs = self._obs()
        if obs is not None:
            obs.span_open(self.host.sim.now, "commit",
                          self._bkey(txn.ballot), node=self.node.node_id)
        self.prepare_commit_cert(
            txn, on_cert=lambda cert, b=txn.ballot: self._send_commit(b, cert))

    def _send_commit(self, ballot: Ballot, cert) -> None:
        txn = self._txn(ballot)
        checkpoints = []
        for env in txn.accepteds.values():
            ref = env.payload.checkpoint
            if ref is not None:
                checkpoints.append(ref)
        own_ref = self._my_checkpoint_ref()
        if own_ref is not None:
            checkpoints.append(own_ref)
        commit = GlobalCommit(view=self.node.replica.view, ballot=ballot,
                              prev_ballot=txn.prev_ballot,
                              requests=txn.batch, cert=cert,
                              checkpoints=tuple(checkpoints),
                              sender=self.node.node_id)
        obs = self._obs()
        if obs is not None:
            obs.span_close(self.host.sim.now, "commit", self._bkey(ballot),
                           node=self.node.node_id)
        self.host.multicast_signed(self._all_nodes(), commit,
                                   include_self=True)

    def _validate_commit_ctx(self, instance: str, context: Any,
                             endorse_digest: bytes) -> bool:
        if not isinstance(context, CommitContext):
            return False
        if context.ballot.zone_id != self.my_zone.zone_id:
            return False
        if not self._valid_batch(context.requests):
            return False
        request_digest = batch_digest(context.requests)
        if endorse_digest != commit_body(context.ballot, context.prev_ballot,
                                         request_digest):
            return False
        zones = set()
        for env in context.accepteds:
            if not verify_signed(self.host.keys, env):
                continue
            accepted = env.payload
            if accepted.ballot != context.ballot:
                continue
            body = accepted_body(accepted.ballot, accepted.prev_ballot,
                                 accepted.zone_id, accepted.request_digest)
            if self.directory.cert_valid(accepted.cert, body, accepted.zone_id):
                zones.add(accepted.zone_id)
        if len(zones) + 1 < self.majority:
            return False
        return True

    # ------------------------------------------------------------------
    # EXECUTION phase (every node)
    # ------------------------------------------------------------------
    def _on_commit(self, sender: str, commit: GlobalCommit,
                   envelope: Signed) -> None:
        request_digest = batch_digest(commit.requests)
        body = commit_body(commit.ballot, commit.prev_ballot, request_digest)
        valid = self.directory.cert_valid(commit.cert, body,
                                          commit.ballot.zone_id)
        self._emit_cert("commit", commit.ballot.zone_id, commit.cert,
                        valid, sender, self._bkey(commit.ballot))
        if not valid:
            return
        if not self._valid_batch(commit.requests):
            return
        txn = self._txn(commit.ballot)
        if txn.committed:
            return
        txn.committed = True
        obs = self._obs()
        if obs is not None:
            obs.count("sync.committed")
            prev = "" if commit.prev_ballot == GENESIS_BALLOT else \
                self._bkey(commit.prev_ballot)
            obs.emit(self.host.sim.now, "sync.commit",
                     node=self.node.node_id,
                     ballot=self._bkey(commit.ballot),
                     batch=len(commit.requests), prev=prev)
        txn.commit_env = envelope
        txn.batch = commit.requests
        txn.request_digest = request_digest
        txn.prev_ballot = commit.prev_ballot
        self._mark_stale_sources(commit.requests)
        self.highest_seen = max(self.highest_seen, commit.ballot.seq)
        self._cancel_commit_timer(txn)
        self._commit_order.append(commit.ballot)
        if len(self._commit_order) > self.config.commit_history:
            stale = self._commit_order.pop(0)
            old = self.txns.get(stale)
            if old is not None and old.executed:
                old.commit_env = None
        for ref in commit.checkpoints:
            self.node.store_remote_checkpoint(ref)
        self._try_execute(commit.ballot)

    def _try_execute(self, ballot: Ballot) -> None:
        txn = self.txns.get(ballot)
        if txn is None or not txn.committed or txn.executed:
            return
        prev = txn.prev_ballot
        if prev != GENESIS_BALLOT and prev not in self.executed_results:
            self.pending_commits.setdefault(prev, []).append(ballot)
            if prev not in self.txns or not self.txns[prev].committed:
                # We missed the predecessor entirely: ask its initiator zone.
                self._query_zone(prev.zone_id or ballot.zone_id, prev,
                                 "commit")
            return
        txn.executed = True
        obs = self._obs()
        if obs is not None:
            obs.count("sync.executed")
            # Closes on the initiator primary that opened the ballot's
            # global-txn span; no-op on every other node.
            obs.span_close(self.host.sim.now, "global-txn",
                           self._bkey(ballot), node=self.node.node_id)
            obs.emit(self.host.sim.now, "sync.execute",
                     node=self.node.node_id, ballot=self._bkey(ballot),
                     batch=len(txn.batch))
        results: dict[str, Any] = {}
        self.executed_results[ballot] = results
        is_initiator = self.my_zone.zone_id == ballot.zone_id
        for env in txn.batch:
            request = env.payload
            operation = request.operation
            if operation and operation[0] == "migrate":
                # The destination cluster of a cross-cluster migration
                # cannot verify the source zone (regional meta-data); it
                # adopts the source cluster's certified claim instead.
                src_cluster = self.directory.cluster_of_zone(
                    request.source_zone)
                adopt = (src_cluster != self.directory.cluster_of_zone(
                    request.dest_zone)
                    and self.my_zone.cluster_id != src_cluster)
                commuting = self.engine.commuting_execution
                if commuting and request.timestamp <= \
                        self._client_exec_ts.get(request.sender, -1):
                    # A newer migration of this client already applied on
                    # this node: the ballot arrived out of chain order
                    # (concurrent initiators). Skipping it — rather than
                    # rejecting on wrong-source — is what lets every
                    # interleaving converge to the same meta-data.
                    outcome = MigrationOutcome(
                        False, "superseded", request.sender,
                        request.source_zone, request.dest_zone)
                else:
                    # Commuting mode also adopts the (source-zone-
                    # certified) claim: a node that applied the client's
                    # migrations in a different order fixes its counts up
                    # instead of diverging on the source check.
                    outcome = self.node.metadata.apply_migration(
                        request.sender, request.source_zone,
                        request.dest_zone,
                        adopt_source=adopt or commuting)
                    if commuting and outcome.accepted:
                        self._client_exec_ts[request.sender] = \
                            request.timestamp
                if obs is not None:
                    extra = {}
                    if commuting:
                        # Node-independent claim (plus the outcome) so the
                        # monitor can judge commuting executions; default
                        # backends emit the exact legacy shape.
                        extra["reason"] = outcome.reason
                        source = request.source_zone
                    else:
                        source = outcome.source_zone
                    obs.emit(self.host.sim.now, "migration.executed",
                             node=self.node.node_id,
                             ballot=self._bkey(ballot),
                             client=request.sender,
                             req_ts=request.timestamp,
                             source=source,
                             dest=request.dest_zone,
                             accepted=bool(outcome.accepted), **extra)
                results[request.sender] = outcome.as_result()
                self.node.on_global_executed(ballot, request, outcome)
                if is_initiator:
                    result = ("sub1-committed",) + outcome.as_result() \
                        if outcome.accepted else outcome.as_result()
                    self._reply_to_client(request, result)
            else:
                # Generic globally-ordered operation on fully replicated
                # data (how the Steward baseline processes *every* txn).
                result = self.node.app.execute(operation, request.sender)
                self.node.occupy(self.node.cost_model.execution_time(1))
                results[request.sender] = result
                if is_initiator:
                    self._reply_to_client(request, result)
            self.migrations_executed += 1
        for waiting in self.pending_commits.pop(ballot, []):
            self._try_execute(waiting)

    def _reply_to_client(self, request: MigrationRequest, result: Any) -> None:
        reply = ClientReply(view=self.node.replica.view,
                            timestamp=request.timestamp,
                            client_id=request.sender, result=result,
                            sender=self.node.node_id)
        self.host.send_signed(request.sender, reply)

    # ------------------------------------------------------------------
    # Timers / failure handling (paper §V-A)
    # ------------------------------------------------------------------
    def _watch_endorsement(self, txn: GlobalTxnState, instance: str) -> None:
        if txn.watch_timer is not None:
            return
        txn.watch_timer = self.host.set_timer(
            self.config.watch_timeout_ms, self._on_watch_expired,
            txn.ballot, instance)

    def _on_watch_expired(self, ballot: Ballot, instance: str) -> None:
        txn = self.txns.get(ballot)
        if txn is not None:
            txn.watch_timer = None
        if self.node.endorsement.has_instance(instance):
            return
        # Our primary never started the endorsement: suspect it.
        self.node.replica.view_changes.initiate(self.node.replica.view + 1)

    def _arm_commit_timer(self, txn: GlobalTxnState) -> None:
        if txn.commit_timer is not None or txn.committed:
            return
        txn.commit_timer = self.host.set_timer(
            self.config.commit_timeout_ms, self._on_commit_timeout, txn.ballot)

    def _cancel_commit_timer(self, txn: GlobalTxnState) -> None:
        if txn.commit_timer is not None:
            txn.commit_timer.cancel()
            txn.commit_timer = None

    def _on_commit_timeout(self, ballot: Ballot) -> None:
        txn = self.txns.get(ballot)
        if txn is None or txn.committed:
            return
        txn.commit_timer = None
        self._query_zone(ballot.zone_id, ballot, "commit")
        self._arm_commit_timer(txn)

    def _arm_phase_timer(self, txn: GlobalTxnState, phase: str) -> None:
        self._cancel_phase_timer(txn)
        jitter = self._rng.uniform(0.0, self.config.phase_timeout_ms / 2)
        txn.phase_timer = self.host.set_timer(
            self.config.phase_timeout_ms + jitter,
            self._on_phase_timeout, txn.ballot, phase)

    def _cancel_phase_timer(self, txn: GlobalTxnState) -> None:
        if txn.phase_timer is not None:
            txn.phase_timer.cancel()
            txn.phase_timer = None

    def _on_phase_timeout(self, ballot: Ballot, phase: str) -> None:
        """Initiator-side stall/collision recovery.

        With a stable leader there are no rival ballots, so the safe move
        is to *retry the same ballot* (re-multicast the same certified
        message — classic Paxos retransmission); this also preserves the
        execution chain across partitions. In leaderless mode a timeout
        usually means a rival ballot won at the followers, so the request
        is re-proposed under a fresh, higher ballot (randomised back-off,
        §V-C) and the chain tail is rolled back past the dead ballot.
        """
        txn = self.txns.get(ballot)
        if txn is None or txn.committed or txn.phase != phase:
            return
        if not self._is_zone_primary():
            return
        if phase == "accept":
            # The ACCEPT-body endorsement never certified (pre-prepare or
            # prepares lost, or members held a crashed primary's rival
            # assignment until our newer view overrode it). This ballot
            # may already be referenced as prev by committed successors,
            # so it cannot be abandoned — keep re-driving it.
            self._redrive_initiator(txn)
            return
        if phase == "accepted-wait":
            self._query_all_followers(txn, "accepted")
        if self.config.stable_leader and phase == "accepted-wait" and \
                txn.accept_env is not None:
            self.host.multicast_signed(self._other_zone_nodes(),
                                       txn.accept_env.payload)
            self._arm_phase_timer(txn, phase)
            return
        for env in txn.batch:
            request = env.payload
            self.request_dedup.pop((request.sender, request.timestamp), None)
        txn.phase = "superseded"
        if self.chain_tail == txn.ballot and txn.prev_ballot is not None:
            self.chain_tail = txn.prev_ballot
        self.start_global_txn(txn.batch)

    def _query_zone(self, zone_id: str, ballot: Ballot, phase: str) -> None:
        if not zone_id:
            return
        query = ResponseQuery(view=self.node.replica.view, ballot=ballot,
                              request_digest=b"", phase=phase,
                              zone_id=self.my_zone.zone_id,
                              sender=self.node.node_id)
        self.host.multicast_signed(self.directory.zone(zone_id).members, query)

    def _query_all_followers(self, txn: GlobalTxnState, phase: str) -> None:
        query = ResponseQuery(view=self.node.replica.view, ballot=txn.ballot,
                              request_digest=txn.request_digest or b"",
                              phase=phase, zone_id=self.my_zone.zone_id,
                              sender=self.node.node_id)
        self.host.multicast_signed(self._other_zone_nodes(), query)

    def _on_response_query(self, sender: str, query: ResponseQuery,
                           envelope: Signed) -> None:
        # §V-A: log every query; rate-limit senders that abuse the
        # resend path as a denial-of-service amplification vector.
        if not self.node.query_audit.record(sender, self.host.sim.now):
            return
        txn = self.txns.get(query.ballot)
        if query.phase == "commit":
            if txn is not None and txn.commit_env is not None:
                # The querier missed this commit — and, after a crash or
                # partition, typically a contiguous stretch after it too.
                # Ship the whole committed suffix we still hold so one
                # round trip heals an arbitrarily long gap, instead of
                # the querier walking the prev chain one hop at a time.
                try:
                    start = self._commit_order.index(query.ballot)
                except ValueError:
                    self.host.forward(sender, txn.commit_env)
                    return
                shipped = 0
                for ballot in self._commit_order[start:]:
                    held = self.txns.get(ballot)
                    if held is None or held.commit_env is None:
                        continue
                    self.host.forward(sender, held.commit_env)
                    shipped += 1
                    if shipped >= 64:
                        break
                if shipped == 0:
                    self.host.forward(sender, txn.commit_env)
                return
        elif query.phase == "accepted":
            if txn is not None and txn.phase in ("accepted", "committed"):
                # The querier lost our ACCEPTED: re-certify and re-send.
                self._relead_accepted(query.ballot)
                return
        elif query.phase == "state":
            self.node.migration.answer_state_query(sender, query)
            return
        # Log the query; 2f+1 distinct queriers from one zone (with no
        # newer accepted ballot in between) point at our own primary.
        if self.last_accepted > query.ballot:
            return
        key = (query.ballot, query.phase)
        senders = self._query_log.setdefault(key, set())  # lint: allow[taint-flow] query audit log: senders are rate-limited by QueryAudit above and entries only feed the faulty-primary detector
        senders.add(sender)
        querier_zone = self.directory.zone_of(sender)
        quorum = self.directory.zone(querier_zone).quorum
        zone_senders = [s for s in senders
                        if self.directory.zone_of(s) == querier_zone]
        if len(zone_senders) >= quorum:
            self._query_log.pop(key, None)
            self.node.replica.view_changes.initiate(self.node.replica.view + 1)

    # ------------------------------------------------------------------
    # Local view change: the new primary re-drives in-flight transactions
    # ------------------------------------------------------------------
    def _on_local_view_change(self) -> None:
        if not self._is_zone_primary():
            return
        for txn in list(self.txns.values()):
            if txn.committed or not txn.batch:
                continue
            # Failover policy is an engine method: the backend decides how
            # the new zone primary re-drives in-flight ballots.
            if txn.ballot.zone_id == self.my_zone.zone_id:
                self.engine.on_initiator_failover(self, txn)
            else:
                self.engine.on_follower_failover(self, txn)

    def _redrive_initiator(self, txn: GlobalTxnState) -> None:
        if txn.phase in ("superseded",):
            return
        # A follower taking over mid-ballot has no phase history — the old
        # primary's progress lives in hard evidence banked on every zone
        # member: ACCEPTED certificates (multicast zone-wide) and the
        # validated accept-endorsement instance. Reconstruct from those
        # first; the local phase only describes this node's own attempts.
        if txn.batch and len(txn.accepteds) + 1 >= self.majority:
            self._start_commit_phase(txn)
            return
        accept_instance = self._instance("accept", txn.ballot)
        state = self.node.endorsement.instance_state(accept_instance)
        if state is not None and state.payload is not None:
            # Re-certify the SAME accept body. Assigning a fresh
            # prev_ballot here would fork the execution chain behind
            # successors that already committed against the original one.
            # Arm the retry timer first: the lead may complete
            # synchronously from banked shares, and _send_accept then
            # re-arms the timer for the accepted-wait phase.
            txn.phase = "accept"
            self._arm_phase_timer(txn, "accept")
            self.node.endorsement.lead(
                accept_instance, state.payload, state.endorse_digest,
                use_prepare=self._use_prepare(
                    assigning_ballot=self.config.stable_leader),
                on_cert=lambda cert, b=txn.ballot: self._send_accept(b, cert))
            return
        if txn.phase in ("start", "propose", "promise-wait") and \
                not self.config.stable_leader:
            self._start_propose_phase(txn)
        elif txn.phase in ("start", "accept", "promise-wait"):
            self._start_accept_phase(txn, promises=tuple(txn.promises.values()))
        elif txn.phase == "accepted-wait":
            self._send_accept_redrive(txn)
        elif txn.phase == "commit":
            self._start_commit_phase(txn)

    def _send_accept_redrive(self, txn: GlobalTxnState) -> None:
        if len(txn.accepteds) + 1 >= self.majority:
            self._start_commit_phase(txn)
        else:
            self._start_accept_phase(txn, promises=tuple(txn.promises.values()))

    def _relead_accepted(self, ballot: Ballot) -> bool:
        """Re-run (or instantly re-certify) this zone's ACCEPTED
        endorsement and re-send the result to the initiator zone.

        Only the zone primary acts; with the quorum shares already banked
        the endorsement completes synchronously, so this doubles as the
        retransmission path for ACCEPTED messages lost to partitions or
        to a crashed initiator primary.
        """
        if not self._is_zone_primary():
            return False
        instance = self._instance("accepted", ballot)
        state = self.node.endorsement.instance_state(instance)
        if state is None or state.payload is None:
            return False
        self.node.endorsement.lead(
            instance, state.payload, state.endorse_digest,
            use_prepare=self._use_prepare(False),
            on_cert=lambda cert, b=ballot: self._send_accepted(b, cert))
        return True

    def _redrive_follower(self, txn: GlobalTxnState) -> None:
        # Re-run whichever follower endorsement the old primary dropped.
        if txn.phase in ("accepted", "committed"):
            return
        if self._relead_accepted(txn.ballot):
            return
        promise_instance = self._instance("promise", txn.ballot)
        state = self.node.endorsement.instance_state(promise_instance)
        if state is not None and state.payload is not None:
            context = state.payload
            self.node.endorsement.lead(
                promise_instance, context, state.endorse_digest,
                use_prepare=self._use_prepare(False),
                on_cert=lambda cert, b=txn.ballot,
                prev=context.prev_ballot: self._send_promise(b, prev, cert))
