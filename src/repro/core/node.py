"""Ziziphus edge node.

A :class:`ZiziphusNode` hosts all the per-node machinery of the paper's
design on one simulated process:

- a PBFT replica for *local* transactions on the zone's client data,
  vetoing requests from clients whose lock bit is FALSE;
- the intra-zone endorsement manager;
- the data synchronization engine (Algorithm 1) scoped to the zones of
  this node's cluster;
- the data migration engine (Algorithm 2);
- optionally, the cross-cluster engine (paper §VI) when the deployment has
  more than one zone cluster;
- the replicated global (or regional) system meta-data plus lock table,
  and the remote-checkpoint store used for lazy synchronization (§V-B).
"""

from __future__ import annotations

from typing import Any

from repro.consensus import BackendSpec, get_backend
from repro.core.endorsement import EndorsementManager
from repro.core.locks import LockTable
from repro.core.metadata import GlobalMetadata, MigrationOutcome, PolicySet
from repro.core.migration_protocol import MigrationConfig, MigrationEngine
from repro.core.sync_protocol import SyncConfig, SyncEngine
from repro.core.zone import ZoneDirectory
from repro.crypto.digest import digest
from repro.crypto.keys import KeyRegistry
from repro.messages.client import MigrationRequest
from repro.messages.sync import Ballot, CheckpointRef
from repro.pbft.faults import Behavior
from repro.pbft.host import HostNode
from repro.pbft.replica import PBFTConfig, PBFTReplica
from repro.reads import ReadConfig, ReadEngine
from repro.sim.events import Simulator
from repro.sim.network import Network
from repro.sim.process import CostModel

__all__ = ["ZiziphusNode"]


class ZiziphusNode(HostNode):
    """One edge server participating in a Ziziphus deployment."""

    def __init__(self, sim: Simulator, network: Network, keys: KeyRegistry,
                 node_id: str, directory: ZoneDirectory, app: Any,
                 policies: PolicySet | None = None,
                 pbft_config: PBFTConfig | None = None,
                 sync_config: SyncConfig | None = None,
                 migration_config: MigrationConfig | None = None,
                 cost_model: CostModel | None = None,
                 behavior: Behavior | None = None,
                 use_threshold_signatures: bool = False,
                 backend: BackendSpec | None = None,
                 read_config: ReadConfig | None = None) -> None:
        super().__init__(sim, network, keys, node_id,
                         cost_model=cost_model, behavior=behavior)
        self.directory = directory
        self.zone_info = directory.zone(directory.zone_of(node_id))
        self.app = app
        self.backend = backend or get_backend("default")
        self.metadata = GlobalMetadata(policies)
        self.locks = LockTable()
        self.remote_states: dict[str, CheckpointRef] = {}
        from repro.core.audit import QueryAudit
        self.query_audit = QueryAudit()

        profile = self.backend.zone.quorum_profile(self.zone_info.f)
        self.replica = PBFTReplica(
            host=self, group=self.zone_info.members, f=self.zone_info.f,
            app=app, config=pbft_config,
            accept_request=self._accept_local_request,
            profile=profile)
        self.endorsement = EndorsementManager(
            host=self, zone_members=self.zone_info.members,
            f=self.zone_info.f, view_provider=lambda: self.replica.view,
            use_threshold=use_threshold_signatures,
            quorum=profile.certificate_quorum)
        cluster_zone_ids = directory.cluster_zones(self.zone_info.cluster_id)
        self.sync = SyncEngine(self, cluster_zone_ids, sync_config,
                               engine=self.backend.sync)
        self.migration = MigrationEngine(self, migration_config)
        from repro.core.cross_zone import CrossZoneEngine
        self.cross_zone = CrossZoneEngine(self)
        self.replica.reply_fn = self._route_execution_result
        self.reads = ReadEngine(self, read_config,
                                quorum=profile.weak_quorum)
        if self.reads.enabled:
            # Watermark shares only flow when the read path is on, so a
            # write-only deployment stays byte-identical on the wire.
            self.replica.on_executed = self.reads.on_executed
        self.cluster_engine = None  # attached by the deployment when needed

    # ------------------------------------------------------------------
    # Local transaction gating (the lock bit, §IV.A)
    # ------------------------------------------------------------------
    def _accept_local_request(self, request) -> bool:
        from repro.core.cross_zone import INTERNAL_SENDER_PREFIX
        if request.sender.startswith(INTERNAL_SENDER_PREFIX):
            return True   # zone-internal operations (cross-zone escrow)
        return self.locks.is_current(request.sender)

    def _route_execution_result(self, request_env, result) -> None:
        """Replica reply hook: zone-internal results go to the cross-zone
        engine; everything else is answered to the client as usual."""
        from repro.core.cross_zone import INTERNAL_SENDER_PREFIX
        from repro.messages.client import ClientReply
        request = request_env.payload
        if request.sender.startswith(INTERNAL_SENDER_PREFIX):
            self.cross_zone.on_internal_result(request_env, result)
            return
        reply = ClientReply(view=self.replica.view,
                            timestamp=request.timestamp,
                            client_id=request.sender, result=result,
                            sender=self.node_id)
        self.send_signed(request.sender, reply)

    def register_local_client(self, client_id: str) -> None:
        """Bootstrap: mark a client as hosted by this zone, data current."""
        self.locks.register(client_id)

    # ------------------------------------------------------------------
    # Hooks from the protocol engines
    # ------------------------------------------------------------------
    def on_global_executed(self, ballot: Ballot, request: MigrationRequest,
                           outcome: MigrationOutcome) -> None:
        """Called once per executed global transaction, on every node."""
        if self.cluster_engine is not None:
            self.cluster_engine.after_execute(ballot, request, outcome)
        if outcome.accepted:
            if self.zone_info.zone_id == request.source_zone:
                # Backstop for nodes that missed the earlier phases: the
                # client migrated away, its data here is stale.
                self.locks.mark_stale(request.sender)
            self.migration.on_migration_committed(ballot, request)
        elif self.zone_info.zone_id == request.source_zone:
            # The migration was rejected by policy: the client stays; its
            # data here is authoritative again.
            self.locks.mark_current(request.sender)

    def on_migration_applied(self, ballot: Ballot, client_id: str) -> None:
        """Called when this (destination) node appends a migrated R(c)."""

    def store_remote_checkpoint(self, ref: CheckpointRef) -> None:
        """Lazy synchronization (§V-B): keep other zones' newest stable
        checkpoints so their data survives a whole-zone failure."""
        if ref.zone_id == self.zone_info.zone_id:
            return
        # Refs piggyback on ACCEPTED/COMMIT messages but are *not* bound
        # by those certificates, so verify the snapshot against its own
        # digest before adoption: a Byzantine relay must not be able to
        # displace a zone's genuine checkpoint with fabricated state.
        if digest(ref.snapshot) != ref.state_digest:
            return
        current = self.remote_states.get(ref.zone_id)
        if current is None or ref.sequence > current.sequence:
            self.remote_states[ref.zone_id] = ref
