"""Cross-cluster data synchronization (paper §VI).

Zone clusters partition zones into regions with *regional* system
meta-data, so intra-cluster migrations synchronize only the cluster's own
zones. A migration whose source and destination zones live in different
clusters runs this protocol:

1. The destination zone (the coordinator) orders the request in its own
   cluster (Algorithm 1, with the commit phase *held*), and once its zone
   certifies the ballot its ``f+1`` *proxy nodes* send CROSS-PROPOSE to
   the source zone. Proxies — not just the primary — carry cross-cluster
   traffic so one Byzantine primary cannot silently stall the peer cluster.
2. The source zone orders the request in the source cluster under its own
   ballot (each cluster keeps its own meta-data ordering), also holding
   its commit. When its commit certificate is ready, source-zone proxies
   send PREPARED to the destination zone.
3. The destination primary, holding both commit certificates, multicasts
   CROSS-COMMIT to every node of both clusters. Each node validates the
   half belonging to its cluster and executes it on the regional
   meta-data; the data migration protocol then moves R(c) as usual.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.crypto.digest import digest
from repro.messages.base import Signed, verify_signed
from repro.messages.client import MigrationRequest
from repro.messages.cluster import CrossCommit, CrossPropose, Prepared
from repro.messages.sync import (Ballot, GlobalCommit, accept_body,
                                 commit_body)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import ZiziphusNode

__all__ = ["ClusterConfig", "ClusterEngine"]


@dataclass
class ClusterConfig:
    """Tunables for the cross-cluster protocol."""

    #: Timeout waiting for PREPARED / CROSS-COMMIT before re-querying.
    cross_timeout_ms: float = 6_000.0


@dataclass
class CrossTxn:
    """Cross-cluster transaction state on one node."""

    request_env: Signed
    dst_ballot: Ballot | None = None
    dst_prev: Ballot | None = None
    src_ballot: Ballot | None = None
    src_prev: Ballot | None = None
    cert_dst: Any = None
    prepared: Prepared | None = None
    role: str = ""                      # "dst" | "src"
    sent_cross_propose: bool = False
    sent_prepared: bool = False
    finalized: bool = False


class ClusterEngine:
    """Runs the cross-cluster protocol for one node."""

    def __init__(self, node: "ZiziphusNode",
                 config: ClusterConfig | None = None) -> None:
        self.node = node
        self.directory = node.directory
        self.config = config or ClusterConfig()
        self.my_zone = node.zone_info
        self.my_cluster = self.my_zone.cluster_id
        self._txns: dict[bytes, CrossTxn] = {}       # request digest -> state
        self._by_dst_ballot: dict[Ballot, bytes] = {}
        self._by_src_ballot: dict[Ballot, bytes] = {}
        self.cross_commits_executed = 0

        node.register_handler(MigrationRequest, self._route_migration)
        node.register_handler(CrossPropose, self._on_cross_propose)
        node.register_handler(Prepared, self._on_prepared)
        node.register_handler(CrossCommit, self._on_cross_commit)
        node.endorsement.register_kind("gsync-accept",
                                       on_quorum=self._on_accept_endorsed)
        node.endorsement.register_kind("gsync-commit",
                                       on_quorum=self._on_commit_endorsed)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _is_cross(self, request: MigrationRequest) -> bool:
        return (self.directory.cluster_of_zone(request.source_zone)
                != self.directory.cluster_of_zone(request.dest_zone))

    @staticmethod
    def _body_digest(request: MigrationRequest) -> bytes:
        """Digest the sync engine certifies: the batch-of-one payloads."""
        return digest((request,))

    def _orderer_zone(self, cluster_of_zone: str) -> str:
        """The zone that orders a cross-cluster txn inside one cluster.

        Under the stable-leader optimisation every global transaction of a
        cluster is ordered by the cluster's leader zone — including the
        per-cluster halves of cross-cluster transactions, so the leader's
        ballot chain stays collision-free. In leaderless mode the paper's
        §VI roles apply directly (destination / source zones initiate).
        """
        if self.node.sync.config.stable_leader:
            cluster = self.directory.cluster_of_zone(cluster_of_zone)
            return self.directory.cluster_zones(cluster)[0]
        return cluster_of_zone

    def _dst_orderer(self, request: MigrationRequest) -> str:
        return self._orderer_zone(request.dest_zone)

    def _src_orderer(self, request: MigrationRequest) -> str:
        return self._orderer_zone(request.source_zone)

    def _txn_for(self, request_digest: bytes, env: Signed) -> CrossTxn:
        txn = self._txns.get(request_digest)
        if txn is None:
            txn = CrossTxn(request_env=env)
            self._txns[request_digest] = txn  # lint: allow[taint-flow] admission point for client work: per-request coordinator state keyed by the request's own digest, deduplicated above
        return txn

    def _am_proxy(self) -> bool:
        view = self.node.replica.view
        return self.node.node_id in self.my_zone.proxies(view)

    def _obs(self):
        obs = self.node.obs
        return obs if obs is not None and obs.enabled else None

    @staticmethod
    def _span_key(request_digest: bytes) -> str:
        return request_digest.hex()[:16]

    # ------------------------------------------------------------------
    # Request routing (intra-cluster requests go to the sync engine)
    # ------------------------------------------------------------------
    def _route_migration(self, sender: str, request: MigrationRequest,
                         envelope: Signed) -> None:
        if not self._is_cross(request):
            self.node.sync._on_migration_request(sender, request, envelope)
            return
        if self.my_zone.zone_id != self._dst_orderer(request):
            return  # not the coordinator zone for this request
        if not self.node.replica.is_primary:
            self.node.forward(self.node.replica.primary, envelope)
            return
        request_digest = digest(request)
        txn = self._txn_for(request_digest, envelope)
        if txn.dst_ballot is not None:
            return  # already coordinating this request
        txn.role = "dst"
        obs = self._obs()
        if obs is not None:
            obs.count("cross.coordinated")
            obs.span_open(self.node.sim.now, "cross-cluster",
                          self._span_key(request_digest),
                          node=self.node.node_id,
                          source=request.source_zone,
                          dest=request.dest_zone)
        txn.dst_ballot = self.node.sync.start_global_txn(
            (envelope,), on_ready_to_commit=lambda s, d=request_digest:
            self._on_dst_accepted_quorum(d, s))
        self._by_dst_ballot[txn.dst_ballot] = request_digest  # lint: allow[taint-flow] index of this zone's own sync ballots; the request is ordered and certified by the sync engine before adoption

    # ------------------------------------------------------------------
    # Destination side
    # ------------------------------------------------------------------
    def _on_accept_endorsed(self, instance: str, context: Any, cert) -> None:
        """The destination zone certified its ballot: proxies CROSS-PROPOSE."""
        batch = getattr(context, "requests", None)
        if not batch or len(batch) != 1:
            return  # cross-cluster transactions are ordered one per ballot
        request_env = batch[0]
        request = request_env.payload
        if not isinstance(request, MigrationRequest) or not self._is_cross(request):
            return
        if self.my_zone.zone_id != self._dst_orderer(request):
            return
        if not self._am_proxy():
            return
        request_digest = digest(request)
        txn = self._txn_for(request_digest, request_env)
        if txn.sent_cross_propose:
            return
        txn.sent_cross_propose = True
        txn.role = txn.role or "dst"
        txn.dst_ballot = context.ballot
        txn.dst_prev = context.prev_ballot
        self._by_dst_ballot[context.ballot] = request_digest
        obs = self._obs()
        if obs is not None:
            obs.emit(self.node.sim.now, "cross.propose_sent",
                     node=self.node.node_id,
                     request=self._span_key(request_digest))
        cross = CrossPropose(view=self.node.replica.view,
                             dst_ballot=context.ballot,
                             dst_prev_ballot=context.prev_ballot,
                             request=request_env, cert=cert,
                             sender=self.node.node_id)
        source_nodes = self.directory.zone(self._src_orderer(request)).members
        self.node.multicast_signed(source_nodes, cross)

    def _on_dst_accepted_quorum(self, request_digest: bytes, sync_txn) -> None:
        """Destination cluster accepted; build our commit certificate."""
        txn = self._txns.get(request_digest)
        if txn is None:
            return
        txn.dst_prev = sync_txn.prev_ballot
        self.node.sync.prepare_commit_cert(
            sync_txn, on_cert=lambda cert, d=request_digest:
            self._on_dst_commit_cert(d, cert))

    def _on_dst_commit_cert(self, request_digest: bytes, cert) -> None:
        txn = self._txns.get(request_digest)
        if txn is None:
            return
        txn.cert_dst = cert
        self._try_finalize(txn)

    def _on_prepared(self, sender: str, prepared: Prepared,
                     envelope: Signed) -> None:
        request_digest = prepared.request_digest
        txn = self._txns.get(request_digest)
        if txn is None or txn.role != "dst":
            return
        src_zone = self._src_orderer(txn.request_env.payload)
        body = commit_body(prepared.src_ballot, prepared.src_prev_ballot,
                           self._body_digest(txn.request_env.payload))
        valid = self.directory.cert_valid(prepared.cert, body, src_zone)
        obs = self._obs()
        if obs is not None:
            obs.emit_cert(self.node.sim.now, self.node.node_id,
                          "cross-prepared", src_zone, prepared.cert, valid,
                          src=sender,
                          ref=f"{prepared.src_ballot.seq}."
                              f"{prepared.src_ballot.zone_id}")
        if not valid:
            return
        txn.prepared = prepared
        txn.src_ballot = prepared.src_ballot
        txn.src_prev = prepared.src_prev_ballot
        if self.node.replica.is_primary:
            self._try_finalize(txn)

    def _try_finalize(self, txn: CrossTxn) -> None:
        if txn.finalized or txn.cert_dst is None or txn.prepared is None:
            return
        if not self.node.replica.is_primary:
            return
        txn.finalized = True
        obs = self._obs()
        if obs is not None:
            obs.emit(self.node.sim.now, "cross.commit_sent",
                     node=self.node.node_id,
                     dst_ballot=f"{txn.dst_ballot.seq}.{txn.dst_ballot.zone_id}",
                     src_ballot=f"{txn.src_ballot.seq}.{txn.src_ballot.zone_id}")
        commit = CrossCommit(view=self.node.replica.view,
                             dst_ballot=txn.dst_ballot,
                             dst_prev_ballot=txn.dst_prev,
                             src_ballot=txn.src_ballot,
                             src_prev_ballot=txn.src_prev,
                             request=txn.request_env,
                             cert_dst=txn.cert_dst,
                             cert_src=txn.prepared.cert,
                             sender=self.node.node_id)
        dst_cluster = self.directory.cluster_of_zone(txn.dst_ballot.zone_id)
        src_cluster = self.directory.cluster_of_zone(txn.src_ballot.zone_id)
        targets = self.directory.nodes_of_zones(
            self.directory.cluster_zones(dst_cluster)
            + self.directory.cluster_zones(src_cluster))
        self.node.multicast_signed(targets, commit, include_self=True)

    # ------------------------------------------------------------------
    # Source side
    # ------------------------------------------------------------------
    def _on_cross_propose(self, sender: str, cross: CrossPropose,
                          envelope: Signed) -> None:
        request = cross.request.payload
        if not isinstance(request, MigrationRequest):
            return
        if self.my_zone.zone_id != self._src_orderer(request):
            return
        if not verify_signed(self.node.keys, cross.request):
            return
        body = accept_body(cross.dst_ballot, cross.dst_prev_ballot,
                           self._body_digest(request))
        dst_zone = self._dst_orderer(request)
        valid = self.directory.cert_valid(cross.cert, body, dst_zone)
        obs = self._obs()
        if obs is not None:
            obs.emit_cert(self.node.sim.now, self.node.node_id,
                          "cross-propose", dst_zone, cross.cert, valid,
                          src=sender,
                          ref=f"{cross.dst_ballot.seq}."
                              f"{cross.dst_ballot.zone_id}")
        if not valid:
            return
        request_digest = digest(request)
        txn = self._txn_for(request_digest, cross.request)
        txn.role = "src"
        txn.dst_ballot = cross.dst_ballot
        txn.dst_prev = cross.dst_prev_ballot
        if txn.src_ballot is not None:
            return  # already ordering this request in our cluster
        if not self.node.replica.is_primary:
            return  # proxies multicast to the whole orderer zone; primary acts
        txn.src_ballot = self.node.sync.start_global_txn(
            (cross.request,), on_ready_to_commit=lambda s, d=request_digest:
            self._on_src_accepted_quorum(d, s))
        self._by_src_ballot[txn.src_ballot] = request_digest

    def _on_src_accepted_quorum(self, request_digest: bytes, sync_txn) -> None:
        txn = self._txns.get(request_digest)
        if txn is None:
            return
        txn.src_prev = sync_txn.prev_ballot
        txn.src_ballot = sync_txn.ballot
        self._by_src_ballot[sync_txn.ballot] = request_digest
        self.node.sync.prepare_commit_cert(
            sync_txn, on_cert=lambda cert: None)  # proxies act on quorum

    def _on_commit_endorsed(self, instance: str, context: Any, cert) -> None:
        """Commit-phase endorsement done: source proxies send PREPARED."""
        batch = getattr(context, "requests", None)
        if not batch or len(batch) != 1:
            return
        request_env = batch[0]
        request = request_env.payload
        if not isinstance(request, MigrationRequest) or not self._is_cross(request):
            return
        if self.my_zone.zone_id != self._src_orderer(request):
            return
        if not self._am_proxy():
            return
        request_digest = digest(request)
        txn = self._txn_for(request_digest, request_env)
        if txn.sent_prepared:
            return
        txn.sent_prepared = True
        txn.src_ballot = context.ballot
        txn.src_prev = context.prev_ballot
        obs = self._obs()
        if obs is not None:
            obs.emit(self.node.sim.now, "cross.prepared_sent",
                     node=self.node.node_id,
                     request=self._span_key(request_digest))
        prepared = Prepared(view=self.node.replica.view,
                            src_ballot=context.ballot,
                            src_prev_ballot=context.prev_ballot,
                            request_digest=request_digest, cert=cert,
                            sender=self.node.node_id)
        dest_nodes = self.directory.zone(self._dst_orderer(request)).members
        self.node.multicast_signed(dest_nodes, prepared)

    # ------------------------------------------------------------------
    # Combined commit (every node of both clusters)
    # ------------------------------------------------------------------
    def _on_cross_commit(self, sender: str, commit: CrossCommit,
                         envelope: Signed) -> None:
        request = commit.request.payload
        if not isinstance(request, MigrationRequest):
            return
        if not verify_signed(self.node.keys, commit.request):
            return
        request_digest = digest(request)
        dst_cluster = self.directory.cluster_of_zone(commit.dst_ballot.zone_id)
        if self.my_cluster == dst_cluster:
            ballot, prev, cert = (commit.dst_ballot, commit.dst_prev_ballot,
                                  commit.cert_dst)
            foreign = commit.src_ballot
        else:
            ballot, prev, cert = (commit.src_ballot, commit.src_prev_ballot,
                                  commit.cert_src)
            foreign = commit.dst_ballot
        body = commit_body(ballot, prev, self._body_digest(request))
        valid = self.directory.cert_valid(cert, body, ballot.zone_id)
        obs = self._obs()
        if obs is not None:
            obs.emit_cert(self.node.sim.now, self.node.node_id,
                          "cross-commit", ballot.zone_id, cert, valid,
                          src=sender, ref=f"{ballot.seq}.{ballot.zone_id}")
        if not valid:
            return
        txn = self._txn_for(request_digest, commit.request)
        txn.dst_ballot, txn.dst_prev = commit.dst_ballot, commit.dst_prev_ballot
        txn.src_ballot, txn.src_prev = commit.src_ballot, commit.src_prev_ballot
        self._by_dst_ballot[commit.dst_ballot] = request_digest
        self._by_src_ballot[commit.src_ballot] = request_digest
        # Cross-cluster STATE messages travel under the source ballot:
        # teach the migration engine the mapping before execution.
        self.node.migration.alias_ballot(foreign, ballot)
        synthetic = GlobalCommit(view=commit.view, ballot=ballot,
                                 prev_ballot=prev, requests=(commit.request,),
                                 cert=cert, checkpoints=(),
                                 sender=commit.sender)
        self.node.sync.ingest_commit(synthetic)

    # ------------------------------------------------------------------
    # Post-execution aliasing (called from the node's execution hook)
    # ------------------------------------------------------------------
    def after_execute(self, ballot: Ballot, request: MigrationRequest,
                      outcome) -> None:
        request_digest = digest(request)
        txn = self._txns.get(request_digest)
        if txn is None or txn.src_ballot is None or txn.dst_ballot is None:
            return
        self.cross_commits_executed += 1
        obs = self._obs()
        if obs is not None:
            obs.count("cross.executed")
            # Closes on the coordinator primary that opened the span.
            obs.span_close(self.node.sim.now, "cross-cluster",
                           self._span_key(request_digest),
                           node=self.node.node_id)
        # Make the peer cluster's ballot resolve to the same result and
        # request so Algorithm 2 runs unchanged across the cluster border.
        sync = self.node.sync
        results = sync.executed_results.get(ballot)
        if results is None:
            return
        for alias in (txn.src_ballot, txn.dst_ballot):
            sync.executed_results.setdefault(alias, results)
            stub = sync._txn(alias)
            if not stub.batch:
                stub.batch = (txn.request_env,)
                stub.request_digest = request_digest
            self.node.migration._source_zone_of.setdefault(
                (alias, request.sender), request.source_zone)
