"""Deployment builder: zones, clusters, nodes, clients, network.

Assembles a full Ziziphus deployment on the simulator following the
paper's experimental setups:

- single cluster: ``num_zones`` zones of ``3f+1`` nodes, placed across
  AWS regions per §VII-A (3 zones in CA/OH/QC, 5 in CA/SYD/PAR/LDN/TY, 7
  in all regions);
- multiple clusters: each cluster's zones share one region; clusters are
  placed across CA/SYD/PAR/LDN/TY, at most two per region (§VII-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.app.banking import BankingApp
from repro.consensus import get_backend
from repro.core.client import MobileClient
from repro.core.clusters import ClusterConfig, ClusterEngine
from repro.core.metadata import PolicySet
from repro.core.migration_protocol import MigrationConfig
from repro.core.node import ZiziphusNode
from repro.core.sync_protocol import SyncConfig
from repro.core.zone import ZoneDirectory, ZoneInfo
from repro.crypto.keys import KeyRegistry
from repro.errors import ConfigurationError
from repro.pbft.faults import Behavior
from repro.pbft.replica import PBFTConfig
from repro.reads import ReadConfig
from repro.sim.events import Simulator
from repro.sim.latency import LatencyModel, Region, regions_for_zones
from repro.sim.network import Network
from repro.sim.process import CostModel

__all__ = ["ZiziphusConfig", "ZiziphusDeployment", "build_ziziphus"]

#: Cluster placement for §VII-D: one region per cluster, max two per region.
_CLUSTER_REGIONS = (Region.CALIFORNIA, Region.SYDNEY, Region.PARIS,
                    Region.LONDON, Region.TOKYO)


@dataclass
class ZiziphusConfig:
    """Parameters of one Ziziphus deployment."""

    num_zones: int = 3
    f: int = 1
    num_clusters: int = 1
    zones_per_cluster: int | None = None   # defaults to num_zones / clusters
    seed: int = 0
    policies: PolicySet = field(default_factory=PolicySet)
    pbft: PBFTConfig = field(default_factory=PBFTConfig)
    sync: SyncConfig = field(default_factory=SyncConfig)
    migration: MigrationConfig = field(default_factory=MigrationConfig)
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    cost_model: CostModel = field(default_factory=CostModel)
    latency: LatencyModel = field(default_factory=LatencyModel)
    #: Certified read path (disabled by default; see repro.reads).
    read: ReadConfig = field(default_factory=ReadConfig)
    #: Fraction of client actions issued as certified reads (workload
    #: drivers read this; 0.0 keeps the deployment write-only).
    read_fraction: float = 0.0
    app_factory: Callable[[], Any] = BankingApp
    use_threshold_signatures: bool = False
    #: Named consensus backend (see :mod:`repro.consensus.registry`).
    backend: str = "default"
    #: Per-client seeding of a node's application state at bootstrap.
    seed_client: Callable[[Any, str], None] = (
        lambda app, client_id: app.execute(("open", 10_000), client_id))
    #: Byzantine behaviour per node id (default honest).
    behaviors: dict[str, Behavior] = field(default_factory=dict)


class ZiziphusDeployment:
    """A built deployment: simulator, network, nodes, clients."""

    def __init__(self, config: ZiziphusConfig) -> None:
        self.config = config
        self.backend = get_backend(config.backend)
        self.sim = Simulator()
        self.keys = KeyRegistry(seed=config.seed)
        self.network = Network(self.sim, config.latency, seed=config.seed)
        self.directory = ZoneDirectory(self.keys)
        self.nodes: dict[str, ZiziphusNode] = {}
        self.clients: dict[str, MobileClient] = {}
        self._zone_regions: dict[str, Region] = {}
        self._build_topology()
        self._build_nodes()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_topology(self) -> None:
        cfg = self.config
        if cfg.num_clusters < 1:
            raise ConfigurationError("need at least one cluster")
        if cfg.num_clusters == 1:
            regions = regions_for_zones(cfg.num_zones)
            for i in range(cfg.num_zones):
                self._add_zone(f"z{i}", "cluster-0", regions[i])
            return
        per_cluster = cfg.zones_per_cluster or max(
            1, cfg.num_zones // cfg.num_clusters)
        zone_index = 0
        for c in range(cfg.num_clusters):
            region = _CLUSTER_REGIONS[c % len(_CLUSTER_REGIONS)]
            for _ in range(per_cluster):
                self._add_zone(f"z{zone_index}", f"cluster-{c}", region)
                zone_index += 1

    def _add_zone(self, zone_id: str, cluster_id: str, region: Region) -> None:
        profile = self.backend.zone.quorum_profile(self.config.f)
        members = tuple(f"{zone_id}n{j}" for j in range(profile.group_size))
        # The quorum field stays at its 3f+1 default for the pbft zone
        # engine so default-backend topology dumps are unchanged.
        quorum = (None if self.backend.zone.name == "pbft"
                  else profile.certificate_quorum)
        zone = ZoneInfo(zone_id=zone_id, members=members, region=region,
                        f=self.config.f, cluster_id=cluster_id,
                        quorum=quorum)
        self.directory.add_zone(zone)
        self._zone_regions[zone_id] = region

    def _build_nodes(self) -> None:
        cfg = self.config
        multi_cluster = len(self.directory.cluster_ids) > 1
        for zone_id in self.directory.zone_ids:
            zone = self.directory.zone(zone_id)
            for node_id in zone.members:
                node = ZiziphusNode(
                    sim=self.sim, network=self.network, keys=self.keys,
                    node_id=node_id, directory=self.directory,
                    app=cfg.app_factory(), policies=cfg.policies,
                    pbft_config=cfg.pbft, sync_config=cfg.sync,
                    migration_config=cfg.migration,
                    cost_model=cfg.cost_model,
                    behavior=cfg.behaviors.get(node_id),
                    use_threshold_signatures=cfg.use_threshold_signatures,
                    backend=self.backend,
                    read_config=cfg.read)
                if multi_cluster:
                    node.cluster_engine = ClusterEngine(node, cfg.cluster)
                self.network.register(node, zone.region)
                self.nodes[node_id] = node

    # ------------------------------------------------------------------
    # Topology queries
    # ------------------------------------------------------------------
    @property
    def zone_ids(self) -> list[str]:
        """All zone ids."""
        return self.directory.zone_ids

    def zone_nodes(self, zone_id: str) -> list[ZiziphusNode]:
        """The node objects of one zone."""
        return [self.nodes[m] for m in self.directory.zone(zone_id).members]

    def primary_of(self, zone_id: str) -> ZiziphusNode:
        """The current primary node of a zone (queries a live replica)."""
        members = self.directory.zone(zone_id).members
        view = max(self.nodes[m].replica.view for m in members)
        return self.nodes[self.directory.zone(zone_id).primary(view)]

    def zone_of_node(self, node_id: str) -> str:
        """The zone id hosting ``node_id``."""
        return self.directory.zone_of(node_id)

    def set_behavior(self, node_id: str, behavior) -> None:
        """Swap a node's Byzantine behaviour at runtime (chaos engine).

        ``behavior`` is a :class:`~repro.pbft.faults.Behavior` instance
        or a registered name; see :meth:`HostNode.set_behavior`.
        """
        self.nodes[node_id].set_behavior(behavior)

    def stable_leader_zone(self, cluster_id: str) -> str:
        """The designated stable-leader zone of a cluster (its first zone)."""
        return self.directory.cluster_zones(cluster_id)[0]

    def _resolve_initiator(self, source_zone: str, dest_zone: str) -> str:
        # Initiator policy belongs to the global consensus backend: the
        # stable engine routes to the destination cluster's leader zone
        # (keeping each cluster's ballot chain single-writer); the
        # rotating engine lets every destination zone initiate.
        return self.backend.sync.initiator_zone(self, source_zone, dest_zone)

    # ------------------------------------------------------------------
    # Clients
    # ------------------------------------------------------------------
    def add_client(self, client_id: str, zone_id: str,
                   retransmit_ms: float = 4_000.0) -> MobileClient:
        """Create a client homed in ``zone_id`` and bootstrap its state."""
        client = MobileClient(sim=self.sim, network=self.network,
                              keys=self.keys, client_id=client_id,
                              directory=self.directory, home_zone=zone_id,
                              initiator_resolver=self._resolve_initiator,
                              retransmit_ms=retransmit_ms,
                              read_config=self.config.read)
        self.network.register(client, self._zone_regions[zone_id])
        self.clients[client_id] = client
        # Bootstrap: meta-data on every node; data + lock in the home zone.
        cluster_id = self.directory.cluster_of_zone(zone_id)
        for node in self.nodes.values():
            if node.zone_info.cluster_id == cluster_id or \
                    self.config.num_clusters == 1:
                node.metadata.register_client(client_id, zone_id)
        for node in self.zone_nodes(zone_id):
            node.register_local_client(client_id)
            self.config.seed_client(node.app, client_id)
        return client

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def run(self, until_ms: float) -> None:
        """Advance the simulation to ``until_ms``."""
        self.sim.run(until=until_ms)


def build_ziziphus(config: ZiziphusConfig | None = None,
                   **overrides: Any) -> ZiziphusDeployment:
    """Build a deployment from a config (or keyword overrides)."""
    if config is None:
        config = ZiziphusConfig(**overrides)
    elif overrides:
        raise ConfigurationError("pass either a config or overrides, not both")
    return ZiziphusDeployment(config)
