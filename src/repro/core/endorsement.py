"""Intra-zone endorsement rounds.

The reusable sub-protocol at the bottom level of Algorithms 1 and 2: the
zone primary pre-prepares a payload, nodes validate it (via a validator
registered per instance kind) and multicast a vote whose detached *share*
signs the payload digest; ``2f+1`` shares aggregate into a quorum
certificate (or a threshold signature). Per §IV.B.1, a PBFT-style prepare
round is inserted only when the zone itself assigns the ballot number
(``use_prepare=True``); otherwise nodes vote directly on the primary's
pre-prepare.

Completion is observed two ways:

- the node that *leads* an instance gets its ``on_cert`` callback with the
  aggregated certificate (it then sends the top-level message);
- any node can register a kind-level ``on_quorum`` callback, fired when it
  has itself collected a vote quorum (Algorithm 2's record-append, where
  every destination-zone node acts on the quorum, uses this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.quorums import intra_zone_quorum
from repro.crypto.certificates import QuorumCertificate
from repro.crypto.keys import Signature
from repro.crypto.threshold import combine_threshold
from repro.messages.base import Signed
from repro.messages.endorse import EndorsePrepare, EndorsePrePrepare, EndorseVote
from repro.pbft.host import HostNode

__all__ = ["EndorsementManager", "EndorsementInstance"]

Validator = Callable[[str, Any, bytes], bool]
QuorumCallback = Callable[[str, Any, Any], None]
CertCallback = Callable[[Any], None]


@dataclass
class _Kind:
    validator: Validator | None = None
    on_quorum: QuorumCallback | None = None


@dataclass
class EndorsementInstance:
    """State of one endorsement instance on one node."""

    instance: str
    view: int = 0
    payload: Any = None
    endorse_digest: bytes | None = None
    use_prepare: bool = False
    leading: bool = False
    prepare_senders: set[str] = field(default_factory=set)
    shares: dict[str, Signature] = field(default_factory=dict)
    voted: bool = False
    done: bool = False
    on_cert: CertCallback | None = None


class EndorsementManager:
    """Runs endorsement instances for one node of one zone."""

    def __init__(self, host: HostNode, zone_members: tuple[str, ...], f: int,
                 view_provider: Callable[[], int],
                 use_threshold: bool = False,
                 quorum: int | None = None) -> None:
        self.host = host
        self.members = tuple(zone_members)
        self.others = tuple(m for m in zone_members if m != host.node_id)
        self.f = f
        self.quorum = intra_zone_quorum(f) if quorum is None else quorum
        self._members_key = ",".join(self.members)
        self.view_provider = view_provider
        self.use_threshold = use_threshold
        self._instances: dict[str, EndorsementInstance] = {}
        self._kinds: dict[str, _Kind] = {}
        self._retries: dict[str, int] = {}
        host.register_handler(EndorsePrePrepare, self._on_pre_prepare)
        host.register_handler(EndorsePrepare, self._on_prepare)
        host.register_handler(EndorseVote, self._on_vote)

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def register_kind(self, prefix: str, validator: Validator | None = None,
                      on_quorum: QuorumCallback | None = None) -> None:
        """Configure validation / quorum callbacks for instances whose id
        starts with ``prefix + "/"`` (or equals ``prefix``).

        Calls merge: a later registration fills in only the callbacks it
        provides (the cross-cluster engine adds ``on_quorum`` hooks to
        kinds whose validators the sync engine owns).
        """
        kind = self._kinds.setdefault(prefix, _Kind())
        if validator is not None:
            kind.validator = validator
        if on_quorum is not None:
            if kind.on_quorum is None:
                kind.on_quorum = on_quorum
            else:
                first = kind.on_quorum
                def chained(instance, payload, cert,
                            _first=first, _second=on_quorum):
                    _first(instance, payload, cert)
                    _second(instance, payload, cert)
                kind.on_quorum = chained

    def _kind_of(self, instance: str) -> _Kind | None:
        prefix = instance.split("/", 1)[0]
        return self._kinds.get(prefix)

    def _get(self, instance: str) -> EndorsementInstance:
        state = self._instances.get(instance)
        if state is None:
            state = EndorsementInstance(instance=instance)
            self._instances[instance] = state  # lint: allow[taint-flow] per-instance vote state from zone members; shares only bind at the 2f+1 quorum
        return state

    def primary(self) -> str:
        """Current primary of this zone (from the local view)."""
        return self.members[self.view_provider() % len(self.members)]

    def _obs(self):
        obs = self.host.obs
        return obs if obs is not None and obs.enabled else None

    def has_instance(self, instance: str) -> bool:
        """Whether this node has seen the instance's pre-prepare or led it."""
        state = self._instances.get(instance)
        return state is not None and state.payload is not None

    def instance_done(self, instance: str) -> bool:
        """Whether the instance reached a vote quorum on this node."""
        state = self._instances.get(instance)
        return state is not None and state.done

    def discard(self, instance: str) -> None:
        """Drop instance state (GC after the enclosing transaction ends)."""
        self._instances.pop(instance, None)

    def instance_state(self, instance: str) -> EndorsementInstance | None:
        """Inspect an instance's state (used by view-change re-drives)."""
        return self._instances.get(instance)

    def _reset_for_digest(self, state: EndorsementInstance,
                          endorse_digest: bytes) -> None:
        """Drop vote state when an instance switches digests.

        A re-drive after a view change may propose the same instance
        with a different batch, and votes can arrive before the
        pre-prepare that names the digest they belong to. Shares and
        prepares collected for the old digest can never aggregate with
        the new one — combining them would produce (or crash on) an
        invalid certificate — so the instance restarts its count.
        """
        if state.endorse_digest is not None \
                and state.endorse_digest != endorse_digest:
            state.shares.clear()
            state.prepare_senders.clear()
            state.voted = False
            state.done = False
            # Any pending leader callback belongs to the superseded digest:
            # firing it with the new proposal's certificate would pair the
            # old payload with a certificate that doesn't cover it (e.g. a
            # StateTransfer shipping stale records under a valid cert).
            state.leading = False
            state.on_cert = None

    # ------------------------------------------------------------------
    # Leader side
    # ------------------------------------------------------------------
    def lead(self, instance: str, payload: Any, endorse_digest: bytes,
             use_prepare: bool, on_cert: CertCallback) -> None:
        """Start an endorsement instance as this zone's primary."""
        view = self.view_provider()
        state = self._get(instance)
        self._reset_for_digest(state, endorse_digest)
        state.view = view
        state.payload = payload
        state.endorse_digest = endorse_digest
        state.use_prepare = use_prepare
        state.leading = True
        state.on_cert = on_cert
        obs = self._obs()
        if obs is not None:
            obs.count("endorse.led")
            if not state.done:
                obs.span_open(self.host.sim.now, "endorse", instance,
                              node=self.host.node_id,
                              prepare=use_prepare)
        if state.done:
            # A previous primary already drove this instance to quorum and
            # the votes reached us; hand the certificate over immediately
            # (happens when a new primary re-drives after a view change).
            on_cert(self._build_cert(state))
            return
        pre_prepare = EndorsePrePrepare(instance=instance, view=view,
                                        payload=payload,
                                        endorse_digest=endorse_digest,
                                        use_prepare=use_prepare,
                                        sender=self.host.node_id)
        self.host.multicast_signed(self.others, pre_prepare)
        # The primary's share is part of the quorum: send it to the zone
        # (so every node can assemble the certificate) and count it here.
        share = self.host.keys.sign(self.host.node_id, endorse_digest)
        vote = EndorseVote(instance=instance, view=view,
                           endorse_digest=endorse_digest, share=share,
                           sender=self.host.node_id)
        self.host.multicast_signed(self.others, vote)
        self._add_share(state, self.host.node_id, share)

    # ------------------------------------------------------------------
    # Node side
    # ------------------------------------------------------------------
    def _on_pre_prepare(self, sender: str, msg: EndorsePrePrepare,
                        envelope: Signed) -> None:
        if sender != self.primary():
            return
        obs = self._obs()
        if obs is not None:
            # Claimed digest as observed by this receiver: an endorsement
            # primary sending different digests to different members never
            # collects a divergent certificate, so the conformance monitor
            # detects the equivocation here.
            obs.emit(self.host.sim.now, "endorse.preprepare",
                     node=self.host.node_id, sender=sender,
                     instance=msg.instance, view=msg.view,
                     digest=msg.endorse_digest.hex(),
                     members=self._members_key)
        state = self._get(msg.instance)
        if state.payload is not None and state.endorse_digest != msg.endorse_digest:
            # Same view (or older): equivocation, refuse to endorse both.
            # A *strictly newer* view may legitimately re-propose the
            # instance with a different body — the old primary crashed
            # before its assignment reached anyone else, and the new
            # primary rebuilt the batch from its own pending pool. If no
            # certificate exists locally the old digest was never chosen,
            # so adopt the re-proposal (PBFT new-view rule); the vote
            # state banked for the dead digest resets below.
            if state.done or msg.view <= state.view:
                return
        kind = self._kind_of(msg.instance)
        if kind is not None and kind.validator is not None:
            verdict = kind.validator(msg.instance, msg.payload,
                                     msg.endorse_digest)
            if verdict == "retry":
                # Validation depends on state that is still in flight (e.g.
                # the enclosing global commit hasn't executed locally yet):
                # re-dispatch shortly instead of dropping the pre-prepare.
                attempts = self._retries.get(msg.instance, 0)
                if attempts < 200:
                    self._retries[msg.instance] = attempts + 1
                    self.host.set_timer(10.0, self._on_pre_prepare,
                                        sender, msg, envelope)
                return
            if not verdict:
                return
            self._retries.pop(msg.instance, None)
        # Digest known only from early votes (payload still None): the
        # validated pre-prepare wins, and any shares banked against a
        # different digest restart from zero.
        self._reset_for_digest(state, msg.endorse_digest)
        state.view = msg.view  # lint: allow[taint-flow] pre-quorum endorsement vote state; adopted only via on_quorum after 2f+1 verified shares
        state.payload = msg.payload  # lint: allow[taint-flow] pre-quorum endorsement vote state; validator-gated above when the kind registers one
        state.endorse_digest = msg.endorse_digest  # lint: allow[taint-flow] pre-quorum endorsement vote state; the claimed digest IS the ballot being voted on
        state.use_prepare = msg.use_prepare  # lint: allow[taint-flow] phase selector for this vote round only; no replicated state depends on it
        if msg.use_prepare:
            prepare = EndorsePrepare(instance=msg.instance, view=msg.view,
                                     endorse_digest=msg.endorse_digest,
                                     sender=self.host.node_id)
            state.prepare_senders.add(self.host.node_id)
            self.host.multicast_signed(self.others, prepare)  # lint: allow[taint-flow] prepare vote echoes the claimed digest: voting is how endorsement binds it
            self._check_prepared(state)
        else:
            self._cast_vote(state)

    def _on_prepare(self, sender: str, msg: EndorsePrepare,
                    envelope: Signed) -> None:
        if sender not in self.members:
            return
        state = self._get(msg.instance)
        if state.endorse_digest is not None and state.endorse_digest != msg.endorse_digest:
            return
        state.prepare_senders.add(sender)
        self._check_prepared(state)

    def _check_prepared(self, state: EndorsementInstance) -> None:
        if state.payload is None or not state.use_prepare:
            return
        # Pre-prepare sender (the primary) counts as prepared.
        voters = set(state.prepare_senders)
        voters.add(self.primary())
        if len(voters) >= self.quorum:
            self._cast_vote(state)

    def _cast_vote(self, state: EndorsementInstance) -> None:
        if state.voted or state.endorse_digest is None:
            return
        state.voted = True
        share = self.host.keys.sign(self.host.node_id, state.endorse_digest)  # lint: allow[taint-flow] a vote share deliberately signs the claimed digest (threshold endorsement primitive)
        vote = EndorseVote(instance=state.instance, view=state.view,
                           endorse_digest=state.endorse_digest, share=share,
                           sender=self.host.node_id)
        self.host.multicast_signed(self.others, vote)  # lint: allow[taint-flow] broadcasting this node's own vote share over the claimed digest
        self._add_share(state, self.host.node_id, share)

    def _on_vote(self, sender: str, msg: EndorseVote,
                 envelope: Signed) -> None:
        if sender not in self.members:
            return
        state = self._get(msg.instance)
        if state.endorse_digest is not None and state.endorse_digest != msg.endorse_digest:
            return
        if state.endorse_digest is None:
            # Vote arrived before the pre-prepare; remember the digest so
            # shares can still aggregate once the payload shows up.
            state.endorse_digest = msg.endorse_digest
        if not self.host.keys.verify(msg.share, msg.endorse_digest):
            return
        self._add_share(state, sender, msg.share)

    def _add_share(self, state: EndorsementInstance, sender: str,
                   share: Signature) -> None:
        state.shares[sender] = share
        if state.done or len(state.shares) < self.quorum:
            return
        if state.payload is None:
            return  # quorum of shares but no validated payload yet
        state.done = True
        obs = self._obs()
        if obs is not None:
            obs.count("endorse.quorum")
            # Closes only on the node that opened (led) the instance;
            # span_close is a no-op everywhere else.
            obs.span_close(self.host.sim.now, "endorse", state.instance,
                           node=self.host.node_id,
                           shares=len(state.shares))
        cert = self._build_cert(state)
        if state.leading and state.on_cert is not None:
            state.on_cert(cert)
        kind = self._kind_of(state.instance)
        if kind is not None and kind.on_quorum is not None:
            kind.on_quorum(state.instance, state.payload, cert)

    def _build_cert(self, state: EndorsementInstance):
        shares = list(state.shares.values())
        if self.use_threshold:
            return combine_threshold(self.host.keys, state.endorse_digest,
                                     shares, frozenset(self.members),
                                     self.quorum)
        return QuorumCertificate.aggregate(state.endorse_digest, shares)
