"""Canonical quorum arithmetic for the protocol layers (paper §IV-§VI).

The implementation lives in the dependency-free leaf :mod:`repro.quorums`
(so ``crypto``/``pbft``/``obs`` can use it without import cycles); this
module re-exports it as the canonical name the core protocol layers and
the design docs refer to. The ``quorum-arith`` lint rule treats both
files as the only places allowed to spell out ``2f+1``-style arithmetic.
"""

from repro.quorums import (group_size, intra_zone_quorum, max_faulty,
                           proxy_count, sync_commit_quorum, sync_group_size,
                           two_level_big_f, two_thirds_quorum, weak_quorum,
                           zone_majority)

__all__ = [
    "max_faulty", "group_size", "intra_zone_quorum", "weak_quorum",
    "proxy_count", "zone_majority", "two_thirds_quorum", "two_level_big_f",
    "sync_group_size", "sync_commit_quorum",
]
