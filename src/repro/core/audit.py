"""Denial-of-service auditing of failure-handling traffic (paper §V-A).

Nodes answer RESPONSE-QUERY messages by re-sending stored responses —
which an attacker can exploit as a cheap amplification vector. Per the
paper, "the nodes ... log the response-query messages to detect
denial-of-service attacks initiated by malicious nodes": this audit
counts queries per sender over a sliding window and flags senders whose
rate exceeds what honest failure handling could plausibly generate.
Flagged senders' queries are still answered-once but further replays are
dropped (rate limiting), bounding the amplification factor.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = ["AuditConfig", "QueryAudit"]


@dataclass(frozen=True)
class AuditConfig:
    """Thresholds for the response-query audit."""

    #: Sliding window length (ms).
    window_ms: float = 10_000.0
    #: Queries per sender per window before it is suspected.
    suspect_threshold: int = 50
    #: Hard ceiling after which a sender's queries are dropped.
    drop_threshold: int = 200


class QueryAudit:
    """Per-sender sliding-window counter over response-query traffic."""

    def __init__(self, config: AuditConfig | None = None) -> None:
        self.config = config or AuditConfig()
        self._events: dict[str, deque[float]] = {}
        self.total_queries = 0
        self.dropped_queries = 0

    def _window(self, sender: str, now_ms: float) -> deque:
        events = self._events.setdefault(sender, deque())
        horizon = now_ms - self.config.window_ms
        while events and events[0] < horizon:
            events.popleft()
        return events

    def record(self, sender: str, now_ms: float) -> bool:
        """Log one query from ``sender``; returns True if it should be
        answered, False if the sender is being rate-limited."""
        self.total_queries += 1
        events = self._window(sender, now_ms)
        events.append(now_ms)
        if len(events) > self.config.drop_threshold:
            self.dropped_queries += 1
            return False
        return True

    def rate(self, sender: str, now_ms: float) -> int:
        """Queries from ``sender`` within the current window."""
        return len(self._window(sender, now_ms))

    def is_suspected(self, sender: str, now_ms: float) -> bool:
        """Whether ``sender``'s query rate marks it as a likely attacker."""
        return self.rate(sender, now_ms) > self.config.suspect_threshold

    def suspected(self, now_ms: float) -> list[str]:
        """All currently suspected senders."""
        return [sender for sender in list(self._events)
                if self.is_suspected(sender, now_ms)]
