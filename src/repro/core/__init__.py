"""Ziziphus core: zones, global/meta-data protocols, deployments."""

from repro.core import quorums
from repro.core.client import MobileClient
from repro.core.clusters import ClusterConfig, ClusterEngine
from repro.core.cross_zone import (CrossZoneConfig, CrossZoneEngine,
                                   CrossZoneRequest)
from repro.core.audit import AuditConfig, QueryAudit
from repro.core.deployment import (ZiziphusConfig, ZiziphusDeployment,
                                   build_ziziphus)
from repro.core.endorsement import EndorsementManager
from repro.core.locks import LockTable
from repro.core.metadata import GlobalMetadata, MigrationOutcome, PolicySet
from repro.core.migration_protocol import MigrationConfig, MigrationEngine
from repro.core.node import ZiziphusNode
from repro.core.replicated import ReplicatedClient, add_replicated_client
from repro.core.sync_protocol import SyncConfig, SyncEngine
from repro.core.zone import ZoneDirectory, ZoneInfo

__all__ = [
    "ClusterConfig",
    "ClusterEngine",
    "CrossZoneConfig",
    "CrossZoneEngine",
    "CrossZoneRequest",
    "AuditConfig",
    "QueryAudit",
    "ReplicatedClient",
    "add_replicated_client",
    "EndorsementManager",
    "GlobalMetadata",
    "LockTable",
    "MigrationConfig",
    "MigrationEngine",
    "MigrationOutcome",
    "MobileClient",
    "PolicySet",
    "SyncConfig",
    "SyncEngine",
    "ZiziphusConfig",
    "ZiziphusDeployment",
    "ZiziphusNode",
    "ZoneDirectory",
    "ZoneInfo",
    "build_ziziphus",
    "quorums",
]
