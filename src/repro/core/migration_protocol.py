"""Data migration protocol (Algorithm 2).

After the data synchronization protocol commits a migration, the source
zone's primary generates the client state ``R(c)``, certifies it with an
intra-zone endorsement (pre-prepare / prepare / local-state), and ships it
to the destination zone in a STATE message. The destination zone endorses
the received state (pre-prepare / local-commit, no prepare round); once a
node sees the ``2f+1`` vote quorum it sets ``lock(c) = TRUE``, appends
``R(c)`` to its database, and replies to the client.

A global ballot may commit a *batch* of migrations, so protocol state here
is keyed by ``(ballot, client)``.

Failure handling mirrors §V-A: destination nodes that executed the commit
but never receive STATE query the source zone; source nodes answer with
the stored STATE envelope or come to suspect their own primary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.crypto.digest import digest
from repro.messages.base import Signed
from repro.messages.client import ClientReply, MigrationRequest
from repro.messages.migration import StateTransfer, state_body
from repro.messages.query import ResponseQuery
from repro.messages.sync import Ballot
from repro.messages.trace import trace_id

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import ZiziphusNode

__all__ = ["MigrationConfig", "MigrationEngine"]

#: Protocol state key: one migration within one committed ballot.
MigKey = tuple[Ballot, str]


@dataclass
class MigrationConfig:
    """Tunables for the data migration protocol."""

    #: Destination-side timeout waiting for STATE after the global commit.
    state_timeout_ms: float = 4_000.0
    #: Non-primary timeout waiting for the primary to start an endorsement.
    watch_timeout_ms: float = 2_000.0


@dataclass(frozen=True)
class StateContext:
    """Endorsed by the source zone before STATE goes out.

    ``records`` is excluded from the context digest; integrity flows
    through ``records_digest``, which validators recompute.
    """

    ballot: Ballot
    client_id: str
    records: dict[str, Any] = field(compare=False, metadata={"digest": False})
    records_digest: bytes = b""


class MigrationEngine:
    """Runs Algorithm 2 for one node."""

    def __init__(self, node: "ZiziphusNode",
                 config: MigrationConfig | None = None) -> None:
        self.node = node
        self.directory = node.directory
        self.config = config or MigrationConfig()
        self.my_zone = node.zone_info

        self._state_envs: dict[MigKey, Signed] = {}
        self._source_zone_of: dict[MigKey, str] = {}
        #: R(c) as of the migration commit's execution point, captured on
        #: every source-zone node. Re-drives (view changes, destination
        #: re-queries) must ship THIS snapshot: the live store moves on —
        #: the client may even migrate back and transact here again — and
        #: a later export would certify a different state for the same
        #: migration.
        self._captured_records: dict[MigKey, dict[str, Any]] = {}
        #: Cross-cluster: the source cluster ships STATE under *its* ballot;
        #: destination nodes map it back to their own cluster's ballot.
        self._aliases: dict[Ballot, Ballot] = {}
        self._applied: set[MigKey] = set()
        self._buffered_states: dict[MigKey, tuple[str, StateTransfer, Signed]] = {}
        self._state_timers: dict[MigKey, Any] = {}
        self.migrations_applied = 0

        node.register_handler(StateTransfer, self._on_state)
        node.endorsement.register_kind("mig-state",
                                       validator=self._validate_state_ctx)
        node.endorsement.register_kind("mig-append",
                                       validator=self._validate_append_ctx,
                                       on_quorum=self._on_append_quorum)

    # ------------------------------------------------------------------
    # Ballot aliasing (cross-cluster)
    # ------------------------------------------------------------------
    def alias_ballot(self, foreign: Ballot, local: Ballot) -> None:
        """Map a peer cluster's ballot onto this cluster's (cross-cluster)."""
        self._aliases[foreign] = local
        # Re-key anything that arrived before the mapping was known.
        for key in [k for k in self._buffered_states if k[0] == foreign]:
            self._buffered_states[(local, key[1])] = \
                self._buffered_states.pop(key)

    def _canonical(self, ballot: Ballot) -> Ballot:
        return self._aliases.get(ballot, ballot)

    def _key(self, ballot: Ballot, client_id: str) -> MigKey:
        return (self._canonical(ballot), client_id)

    # ------------------------------------------------------------------
    # Hooks from the sync engine (called on every node after execution)
    # ------------------------------------------------------------------
    def on_migration_committed(self, ballot: Ballot,
                               request: MigrationRequest) -> None:
        """React to an executed (accepted) migration, per this node's role."""
        key = self._key(ballot, request.sender)
        self._source_zone_of[key] = request.source_zone
        zone_id = self.my_zone.zone_id
        if zone_id == request.source_zone:
            if key not in self._captured_records:
                self._captured_records[key] = \
                    self.node.app.export_client(request.sender)
            if self.node.replica.is_primary:
                self.start_record_generation(ballot, request)
            else:
                self._watch(key, self._instance("state", ballot,
                                                request.sender))
        elif zone_id == request.dest_zone:
            obs = self._obs()
            if obs is not None and key not in self._applied:
                obs.span_open(self.node.sim.now, "migration-copy",
                              self._span_key(*key), node=self.node.node_id,
                              source=request.source_zone,
                              dest=request.dest_zone)
            buffered = self._buffered_states.pop(key, None)
            if buffered is not None:
                self._on_state(*buffered)
            elif key not in self._applied:
                self._arm_state_timer(key, request)

    # ------------------------------------------------------------------
    # Record generation (source zone)
    # ------------------------------------------------------------------
    def _instance(self, stage: str, ballot: Ballot, client_id: str) -> str:
        return f"mig-{stage}/{ballot.seq}.{ballot.zone_id}/{client_id}"

    def _obs(self):
        obs = self.node.obs
        return obs if obs is not None and obs.enabled else None

    @staticmethod
    def _span_key(ballot: Ballot, client_id: str) -> str:
        return f"{ballot.seq}.{ballot.zone_id}/{client_id}"

    def start_record_generation(self, ballot: Ballot,
                                request: MigrationRequest) -> None:
        """Source primary: extract R(c), endorse it, ship it (lines 9-17)."""
        obs = self._obs()
        if obs is not None:
            obs.count("migration.state_led")
            obs.span_open(self.node.sim.now, "migration-state",
                          self._span_key(ballot, request.sender),
                          node=self.node.node_id,
                          source=request.source_zone, dest=request.dest_zone)
            if obs.causal:
                # One link covers the whole migration leg: the
                # migration-state / migration-copy spans and the
                # mig-* endorse instances all embed this key.
                obs.emit(self.node.sim.now, "trace.link",
                         node=self.node.node_id, scope="migration",
                         key=self._span_key(ballot, request.sender),
                         traces=[trace_id(request)])
        key = self._key(ballot, request.sender)
        records = self._captured_records.get(key)
        if records is None:
            # No capture means this node learned of the migration through a
            # re-query rather than by executing the commit; the live store
            # is the only source available.
            records = self.node.app.export_client(request.sender)
            self._captured_records[key] = records
        records_digest = digest(records)
        context = StateContext(ballot=ballot, client_id=request.sender,
                               records=records, records_digest=records_digest)
        body = state_body(ballot, request.sender, records_digest)
        self.node.endorsement.lead(
            self._instance("state", ballot, request.sender), context, body,
            use_prepare=True,
            on_cert=lambda cert, b=ballot, r=request, rec=records:
            self._send_state(b, r, rec, cert))

    def _send_state(self, ballot: Ballot, request: MigrationRequest,
                    records: dict[str, Any], cert) -> None:
        # Ship exactly the snapshot the zone endorsed: the live store may
        # have drifted (e.g. an incoming transfer) since the export, and
        # the certificate binds the endorsed digest.
        state = StateTransfer(view=self.node.replica.view, ballot=ballot,
                              client_id=request.sender, records=records,
                              records_digest=digest(records), cert=cert,
                              sender=self.node.node_id)
        env = Signed(state, self.node.keys.sign(self.node.node_id,
                                                digest(state)))
        self._state_envs[self._key(ballot, request.sender)] = env
        obs = self._obs()
        if obs is not None:
            obs.span_close(self.node.sim.now, "migration-state",
                           self._span_key(ballot, request.sender),
                           node=self.node.node_id,
                           records=len(records))
            obs.emit(self.node.sim.now, "migration.state_sent",
                     node=self.node.node_id, client=request.sender,
                     dest=request.dest_zone, records=len(records),
                     ballot=f"{ballot.seq}.{ballot.zone_id}",
                     records_digest=digest(records).hex())
        dest_nodes = self.directory.zone(request.dest_zone).members
        for dst in dest_nodes:
            self.node.forward(dst, env)

    def _validate_state_ctx(self, instance: str, context: Any,
                            endorse_digest: bytes) -> Any:
        if not isinstance(context, StateContext):
            return False
        if digest(context.records) != context.records_digest:
            return False
        expected = state_body(context.ballot, context.client_id,
                              context.records_digest)
        if endorse_digest != expected:
            return False
        # Only endorse states for migrations this zone committed as source.
        result = self.node.sync.result_for(context.ballot, context.client_id)
        if result is None:
            return "retry"  # the global commit may still be executing here
        if result[0] != "migrated":
            return False
        # The first endorsed export becomes the zone-canonical R(c):
        # replicas capture at slightly different local interleaving
        # points, so a validator adopts the primary's endorsed records —
        # then a later primary re-driving this migration (view change,
        # destination re-query) ships the identical record instead of a
        # near-miss of its own that the monitor would flag as divergent.
        self._captured_records[self._key(context.ballot,
                                         context.client_id)] = context.records
        return True

    # ------------------------------------------------------------------
    # Record appending (destination zone)
    # ------------------------------------------------------------------
    def _on_state(self, sender: str, state: StateTransfer,
                  envelope: Signed) -> None:
        key = self._key(state.ballot, state.client_id)
        if key in self._applied:
            return
        if digest(state.records) != state.records_digest:
            # Checked *before* parking: a self-inconsistent STATE from a
            # Byzantine sender must not displace a genuine buffered one
            # (the certificate can only be checked after the commit
            # executes, but this digest is verifiable immediately).
            return
        if self.node.sync.result_for(self._canonical(state.ballot),
                                     state.client_id) is None:
            # STATE raced ahead of the global commit; park it.
            self._buffered_states[key] = (sender, state, envelope)
            return
        source_zone = self._source_zone_of.get(key)
        if source_zone is None:
            return
        body = state_body(state.ballot, state.client_id, state.records_digest)
        valid = self.directory.cert_valid(state.cert, body, source_zone)
        obs = self._obs()
        if obs is not None:
            obs.emit_cert(self.node.sim.now, self.node.node_id, "state",
                          source_zone, state.cert, valid, src=sender,
                          ref=f"{state.ballot.seq}.{state.ballot.zone_id}"
                              f"/{state.client_id}")
        if not valid:
            return
        self._state_envs.setdefault(key, envelope)
        instance = self._instance("append", state.ballot, state.client_id)
        if self.node.replica.is_primary:
            self.node.endorsement.lead(
                instance, state, body, use_prepare=False,
                on_cert=lambda cert: None)
        else:
            self._watch(key, instance)

    def _validate_append_ctx(self, instance: str, context: Any,
                             endorse_digest: bytes) -> Any:
        if not isinstance(context, StateTransfer):
            return False
        ballot = context.ballot
        if self.node.sync.result_for(self._canonical(ballot),
                                     context.client_id) is None:
            return "retry"  # the global commit may still be executing here
        if digest(context.records) != context.records_digest:
            return False
        key = self._key(ballot, context.client_id)
        source_zone = self._source_zone_of.get(key)
        if source_zone is None:
            return False
        body = state_body(ballot, context.client_id, context.records_digest)
        if endorse_digest != body:
            return False
        return self.directory.cert_valid(context.cert, body, source_zone)

    def _on_append_quorum(self, instance: str, context: Any, cert) -> None:
        """Lines 22-25: every destination node appends on the vote quorum."""
        if not isinstance(context, StateTransfer):
            return
        key = self._key(context.ballot, context.client_id)
        if key in self._applied:
            return
        self._applied.add(key)
        self._cancel_state_timer(key)
        obs = self._obs()
        if obs is not None:
            obs.count("migration.applied")
            obs.span_close(self.node.sim.now, "migration-copy",
                           self._span_key(*key), node=self.node.node_id,
                           records=len(context.records))
            ballot = context.ballot
            obs.emit(self.node.sim.now, "migration.applied",
                     node=self.node.node_id, client=context.client_id,
                     ballot=f"{ballot.seq}.{ballot.zone_id}",
                     records=len(context.records),
                     records_digest=context.records_digest.hex())
        self.node.app.import_client(context.client_id, context.records)
        self.node.locks.mark_current(context.client_id)
        self.migrations_applied += 1
        request = self._request_of(context.ballot, context.client_id)
        if request is not None:
            reply = ClientReply(view=self.node.replica.view,
                                timestamp=request.timestamp,
                                client_id=request.sender,
                                result=("migrated", "ok", request.dest_zone),
                                sender=self.node.node_id)
            self.node.send_signed(request.sender, reply)
        self.node.on_migration_applied(context.ballot, context.client_id)

    def _request_of(self, ballot: Ballot,
                    client_id: str) -> MigrationRequest | None:
        for candidate in (self._canonical(ballot), ballot):
            txn = self.node.sync.txns.get(candidate)
            if txn is None:
                continue
            for env in txn.batch:
                if env.payload.sender == client_id:
                    return env.payload
        return None

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def _watch(self, key: MigKey, instance: str) -> None:
        self.node.set_timer(self.config.watch_timeout_ms,
                            self._on_watch_expired, key, instance)

    def _on_watch_expired(self, key: MigKey, instance: str) -> None:
        if key in self._applied:
            return
        if self.node.endorsement.instance_done(instance):
            return
        if not self.node.endorsement.has_instance(instance):
            self.node.replica.view_changes.initiate(self.node.replica.view + 1)

    def _arm_state_timer(self, key: MigKey,
                         request: MigrationRequest) -> None:
        if key in self._state_timers:
            return
        timer = self.node.set_timer(self.config.state_timeout_ms,
                                    self._on_state_timeout, key, request)
        self._state_timers[key] = timer

    def _cancel_state_timer(self, key: MigKey) -> None:
        timer = self._state_timers.pop(key, None)
        if timer is not None:
            timer.cancel()

    def _on_state_timeout(self, key: MigKey,
                          request: MigrationRequest) -> None:
        self._state_timers.pop(key, None)
        if key in self._applied:
            return
        ballot, _client = key
        query = ResponseQuery(view=self.node.replica.view, ballot=ballot,
                              request_digest=digest(request.sender),
                              phase="state", zone_id=self.my_zone.zone_id,
                              sender=self.node.node_id)
        source_nodes = self.directory.zone(request.source_zone).members
        self.node.multicast_signed(source_nodes, query)
        self._arm_state_timer(key, request)

    def answer_state_query(self, sender: str, query: ResponseQuery) -> None:
        """Source-side response to a STATE query (re-send or suspect)."""
        # The query names the client via the request digest; scan our state
        # envelopes for this ballot.
        for key, env in self._state_envs.items():
            ballot, client_id = key
            if ballot == self._canonical(query.ballot) and \
                    digest(client_id) == query.request_digest:
                self.node.forward(sender, env)
                return
        # We executed the commit but our primary never shipped the state:
        # nudge record generation if we are (now) the primary.
        if not self.node.replica.is_primary:
            return
        txn = self.node.sync.txns.get(self._canonical(query.ballot))
        if txn is None:
            return
        for env in txn.batch:
            request = env.payload
            if digest(request.sender) == query.request_digest and \
                    self.my_zone.zone_id == request.source_zone:
                if self.node.sync.result_for(self._canonical(query.ballot),
                                             request.sender) is None:
                    # Not executed here yet: exporting now would certify a
                    # pre-commit-point R(c). The destination's timer will
                    # re-query once we catch up.
                    return
                self.start_record_generation(query.ballot, request)
                return
