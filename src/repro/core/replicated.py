"""Zone-replicated clients (paper §V-B availability option).

Proposition 5.4: if an entire zone fails, its data becomes unavailable.
The paper's remedy for clients that need zonal fault tolerance is to
"replicate local transactions on multiple zones where for every local
transaction ... consensus among all the zones that maintain the data is
needed. This approach is similar to the cross-zone transaction
processing ... different zones maintain the same data" — at the price of
geo-scale latency for every write.

:class:`ReplicatedClient` implements exactly that on the cross-zone
machinery: every *write* is a cross-zone transaction whose step is the
same operation in every replication-group zone (the home zone prepares,
the others apply at finalize), and *reads* stay local. When the home
zone fails entirely, :meth:`ReplicatedClient.fail_over` moves the client
to a surviving group zone where its data is already live.
"""

from __future__ import annotations

from repro.core.client import MobileClient
from repro.core.cross_zone import CrossZoneRequest
from repro.crypto.digest import digest
from repro.errors import ConfigurationError

__all__ = ["ReplicatedClient", "add_replicated_client"]


class ReplicatedClient(MobileClient):
    """A client whose data is kept live on a whole replication group."""

    #: Set by :func:`add_replicated_client`.
    replication_group: tuple[str, ...] = ()

    def submit_replicated(self, operation: tuple) -> None:
        """Apply ``operation`` on every zone of the replication group.

        The home (current) zone orders and executes the operation first —
        its deterministic outcome decides commit/abort — and the other
        group zones apply it at finalize time, keeping all copies equal.
        """
        if not self.replication_group:
            raise ConfigurationError("client has no replication group")
        self.timestamp += 1
        steps = {zone: operation for zone in self.replication_group}
        request = CrossZoneRequest(steps=steps, steps_digest=digest(steps),
                                   prepare_zone=self.current_zone,
                                   timestamp=self.timestamp,
                                   sender=self.node_id)
        self._launch(request, target_zone=self.current_zone)

    def fail_over(self, zone_id: str) -> None:
        """Re-home the client onto another zone of its group (used when
        the home zone suffers a whole-zone outage)."""
        if zone_id not in self.replication_group:
            raise ConfigurationError(
                f"{zone_id} is not in the replication group")
        self.current_zone = zone_id
        self.network.move(self.node_id, self.directory.zone(zone_id).region)


def add_replicated_client(deployment, client_id: str,
                          zones: list[str]) -> ReplicatedClient:
    """Create a client hosted live on several zones (§V-B).

    The client's state is seeded on every zone of the group and all of
    them hold its lock, so any group zone can serve reads — and writes go
    through :meth:`ReplicatedClient.submit_replicated`.
    """
    if len(zones) < 2:
        raise ConfigurationError("a replication group needs >= 2 zones")
    home = zones[0]
    client = ReplicatedClient(
        sim=deployment.sim, network=deployment.network,
        keys=deployment.keys, client_id=client_id,
        directory=deployment.directory, home_zone=home,
        initiator_resolver=deployment._resolve_initiator)
    client.replication_group = tuple(zones)
    deployment.network.register(client, deployment.directory.zone(home).region)
    deployment.clients[client_id] = client
    for node in deployment.nodes.values():
        node.metadata.register_client(client_id, home)
    for zone_id in zones:
        for node in deployment.zone_nodes(zone_id):
            node.register_local_client(client_id)
            deployment.config.seed_client(node.app, client_id)
    return client
