"""Zones, zone clusters, and the network directory.

A *zone* is a Byzantine fault-tolerant group of ``3f+1`` edge nodes in one
region; a *zone cluster* is a set of zones sharing regional system
meta-data (paper §VI). The :class:`ZoneDirectory` is the static deployment
map every node is configured with: zone membership, regions, and cluster
assignment. It also centralises certificate validation against a zone's
membership and quorum.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.certificates import CertificateVerifier, QuorumCertificate
from repro.crypto.keys import KeyRegistry
from repro.crypto.threshold import ThresholdCertificate, ThresholdVerifier
from repro.core.quorums import (group_size, intra_zone_quorum, proxy_count,
                                zone_majority)
from repro.errors import ConfigurationError
from repro.sim.latency import Region

__all__ = ["ZoneInfo", "ZoneDirectory"]


@dataclass(frozen=True)
class ZoneInfo:
    """Static description of one zone.

    ``quorum`` defaults to the canonical PBFT certificate quorum
    (``2f+1`` over ``3f+1`` members); a zone running a non-default
    consensus backend records its profile's ``certificate_quorum``
    here, and the membership floor relaxes to that quorum.
    """

    zone_id: str
    members: tuple[str, ...]
    region: Region
    f: int
    cluster_id: str = "cluster-0"
    quorum: int | None = None

    def __post_init__(self) -> None:
        if self.quorum is None:
            if len(self.members) < group_size(self.f):
                raise ConfigurationError(
                    f"zone {self.zone_id} needs >= 3f+1 members "
                    f"(got {len(self.members)} for f={self.f})"
                )
            object.__setattr__(self, "quorum", intra_zone_quorum(self.f))
        elif len(self.members) < self.quorum:
            raise ConfigurationError(
                f"zone {self.zone_id} needs >= quorum={self.quorum} members "
                f"(got {len(self.members)} for f={self.f})"
            )
        # Hot-path memo (the dataclass is frozen, hence the setattr
        # spelling): certificate checks hit it per message.
        object.__setattr__(self, "_member_set", frozenset(self.members))

    @property
    def member_set(self) -> frozenset[str]:
        """Membership as a frozenset (cached; members stays the tuple)."""
        return self._member_set

    def primary(self, view: int) -> str:
        """Primary of this zone in local view ``view``."""
        return self.members[view % len(self.members)]

    def proxies(self, view: int) -> tuple[str, ...]:
        """The f+1 proxy nodes for cross-cluster communication (§VI).

        The primary is always a proxy; the next f nodes in rotation join it
        so at least one proxy is correct.
        """
        size = len(self.members)
        return tuple(self.members[(view + k) % size]
                     for k in range(proxy_count(self.f)))


class ZoneDirectory:
    """Deployment-wide map of zones, clusters, and node placement."""

    def __init__(self, keys: KeyRegistry) -> None:
        self._zones: dict[str, ZoneInfo] = {}
        self._node_zone: dict[str, str] = {}
        self._clusters: dict[str, list[str]] = {}
        self._cert_verifier = CertificateVerifier(keys)
        self._threshold_verifier = ThresholdVerifier(keys)

    def add_zone(self, zone: ZoneInfo) -> None:
        """Register a zone and index its members."""
        if zone.zone_id in self._zones:
            raise ConfigurationError(f"duplicate zone id {zone.zone_id!r}")
        self._zones[zone.zone_id] = zone
        self._clusters.setdefault(zone.cluster_id, []).append(zone.zone_id)
        for member in zone.members:
            if member in self._node_zone:
                raise ConfigurationError(
                    f"node {member!r} already belongs to a zone")
            self._node_zone[member] = zone.zone_id

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def zone_ids(self) -> list[str]:
        """All zone ids, in registration order."""
        return list(self._zones)

    @property
    def cluster_ids(self) -> list[str]:
        """All cluster ids, in registration order."""
        return list(self._clusters)

    def zone(self, zone_id: str) -> ZoneInfo:
        """Zone info by id."""
        return self._zones[zone_id]

    def zone_of(self, node_id: str) -> str:
        """Zone id a node belongs to."""
        return self._node_zone[node_id]

    def cluster_zones(self, cluster_id: str) -> list[str]:
        """Zone ids of one cluster."""
        return list(self._clusters[cluster_id])

    def cluster_of_zone(self, zone_id: str) -> str:
        """Cluster id a zone belongs to."""
        return self._zones[zone_id].cluster_id

    def all_nodes(self) -> list[str]:
        """Every zone member across the deployment."""
        return [m for z in self._zones.values() for m in z.members]

    def nodes_of_zones(self, zone_ids: list[str]) -> list[str]:
        """Members of the given zones, flattened."""
        return [m for zid in zone_ids for m in self._zones[zid].members]

    def majority_quorum(self, zone_ids: list[str]) -> int:
        """Majority-of-zones quorum used for global consensus."""
        return zone_majority(len(zone_ids))

    # ------------------------------------------------------------------
    # Certificate validation
    # ------------------------------------------------------------------
    def cert_valid(self, cert, expected_digest: bytes, zone_id: str) -> bool:
        """Whether ``cert`` proves 2f+1 of ``zone_id`` signed the digest."""
        zone = self._zones.get(zone_id)
        if zone is None or cert is None:
            return False
        if cert.payload_digest != expected_digest:
            return False
        if isinstance(cert, QuorumCertificate):
            return self._cert_verifier.is_valid_zone(cert, zone.f,
                                                     zone.members,
                                                     quorum=zone.quorum)
        if isinstance(cert, ThresholdCertificate):
            if cert.group != zone.member_set:
                return False
            if cert.threshold < zone.quorum:
                return False
            return self._threshold_verifier.is_valid(cert)
        return False
