"""Per-client lock bits.

Nodes maintain a *lock* bit per client tracking mobility: ``True`` means
the client's data in this zone is up to date and local transactions are
accepted; the source zone flips it to ``False`` during the promise phase
of a migration (no more local requests accepted there), and the
destination zone flips it to ``True`` once the migrated state is appended
(paper §IV.A, Algorithms 1-2).
"""

from __future__ import annotations

__all__ = ["LockTable"]


class LockTable:
    """Tracks the lock bit per client (default: unlocked/up-to-date)."""

    def __init__(self) -> None:
        self._locked_out: set[str] = set()
        self._known: set[str] = set()

    def register(self, client_id: str) -> None:
        """Mark a client as hosted here with up-to-date data."""
        self._known.add(client_id)
        self._locked_out.discard(client_id)

    def is_current(self, client_id: str) -> bool:
        """Whether the client's data here is up to date (lock == TRUE)."""
        return client_id in self._known and client_id not in self._locked_out

    def hosts(self, client_id: str) -> bool:
        """Whether this zone has ever hosted the client."""
        return client_id in self._known

    def mark_stale(self, client_id: str) -> None:
        """Set lock(c) = FALSE: the client is migrating away."""
        self._known.add(client_id)
        self._locked_out.add(client_id)

    def mark_current(self, client_id: str) -> None:
        """Set lock(c) = TRUE: the client's data here is authoritative."""
        self._known.add(client_id)
        self._locked_out.discard(client_id)
