"""Global system meta-data and network-wide policies.

Every node of every zone (or of every zone in a cluster, when zone
clusters are enabled) replicates the global system meta-data: the number
of clients per zone, the number of migrations per client, and the
authoritative zone of each client. Executing a committed global
transaction updates the meta-data *subject to the policy set* — the check
is part of deterministic execution, so all zones accept or reject a
migration identically (paper §III-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.crypto.digest import digest

__all__ = ["PolicySet", "GlobalMetadata", "MigrationOutcome"]


@dataclass(frozen=True)
class PolicySet:
    """Network-wide policies enforced on global transactions.

    The paper's running examples: "a zone cannot host more than 10000
    clients" and "a client can migrate at most 10 times a year".
    ``None`` disables a policy.
    """

    max_clients_per_zone: int | None = None
    max_migrations_per_client: int | None = None


@dataclass(frozen=True)
class MigrationOutcome:
    """Deterministic result of executing a migration operation."""

    accepted: bool
    reason: str
    client_id: str
    source_zone: str
    dest_zone: str

    def as_result(self) -> tuple:
        """Shape sent back to the client in replies."""
        status = "migrated" if self.accepted else "rejected"
        return (status, self.reason, self.dest_zone)


class GlobalMetadata:
    """The replicated meta-data state machine."""

    def __init__(self, policies: PolicySet | None = None) -> None:
        self.policies = policies or PolicySet()
        self.clients_per_zone: dict[str, int] = {}
        self.migrations_per_client: dict[str, int] = {}
        self.client_zone: dict[str, str] = {}
        self.executed_migrations = 0
        self.rejected_migrations = 0

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------
    def register_client(self, client_id: str, zone_id: str) -> None:
        """Record a client's initial placement (deployment bootstrap)."""
        self.client_zone[client_id] = zone_id
        self.clients_per_zone[zone_id] = self.clients_per_zone.get(zone_id, 0) + 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def apply_migration(self, client_id: str, source_zone: str,
                        dest_zone: str,
                        adopt_source: bool = False) -> MigrationOutcome:
        """Apply one committed migration, enforcing policies.

        Deterministic: given identical meta-data, every node reaches the
        same outcome, so acceptance/rejection is consistent network-wide.

        ``adopt_source`` is used by the *destination* cluster of a
        cross-cluster migration: its regional meta-data cannot have
        tracked the client's intra-cluster moves inside other clusters,
        so instead of rejecting an unexpected source zone it adopts the
        (source-cluster-certified) claim and fixes up its counts.
        """
        current = self.client_zone.get(client_id)
        if current is not None and current != source_zone:
            if not adopt_source:
                self.rejected_migrations += 1
                return MigrationOutcome(False, "wrong-source-zone", client_id,
                                        source_zone, dest_zone)
            # Regional drift: decrement wherever *we* thought the client
            # was; the source cluster vouches for where it really is.
            source_zone = current
        if source_zone == dest_zone:
            self.rejected_migrations += 1
            return MigrationOutcome(False, "same-zone", client_id,
                                    source_zone, dest_zone)
        limit = self.policies.max_migrations_per_client
        if limit is not None and self.migrations_per_client.get(client_id, 0) >= limit:
            self.rejected_migrations += 1
            return MigrationOutcome(False, "migration-limit", client_id,
                                    source_zone, dest_zone)
        cap = self.policies.max_clients_per_zone
        if cap is not None and self.clients_per_zone.get(dest_zone, 0) >= cap:
            self.rejected_migrations += 1
            return MigrationOutcome(False, "zone-full", client_id,
                                    source_zone, dest_zone)
        self.clients_per_zone[source_zone] = max(
            0, self.clients_per_zone.get(source_zone, 0) - 1)
        self.clients_per_zone[dest_zone] = self.clients_per_zone.get(dest_zone, 0) + 1
        self.migrations_per_client[client_id] = (
            self.migrations_per_client.get(client_id, 0) + 1)
        self.client_zone[client_id] = dest_zone
        self.executed_migrations += 1
        return MigrationOutcome(True, "ok", client_id, source_zone, dest_zone)

    # ------------------------------------------------------------------
    # Snapshot / digest
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Full copy of the meta-data state."""
        return {
            "clients_per_zone": dict(self.clients_per_zone),
            "migrations_per_client": dict(self.migrations_per_client),
            "client_zone": dict(self.client_zone),
        }

    def restore(self, snapshot: dict[str, Any]) -> None:
        """Replace meta-data state with ``snapshot``."""
        self.clients_per_zone = dict(snapshot["clients_per_zone"])
        self.migrations_per_client = dict(snapshot["migrations_per_client"])
        self.client_zone = dict(snapshot["client_zone"])

    def state_digest(self) -> bytes:
        """Canonical digest for cross-node agreement checks."""
        return digest(self.snapshot())
