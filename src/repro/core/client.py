"""Mobile Ziziphus client.

A client issues *local* transactions to its current zone and, when it
moves, a *migration request* (global transaction) to the initiator zone's
primary — the destination zone by default, or the stable-leader zone when
that optimisation is on. Completion requires ``f+1`` matching replies from
one zone: the destination zone after the data migration protocol appends
R(c) (successful migration), or the initiator zone when the migration was
rejected by policy.

Following the paper's evaluation methodology, physical mobility is
simulated: the same client identity simply starts addressing its new zone
once the migration completes.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable

from repro.core.quorums import weak_quorum
from repro.core.zone import ZoneDirectory
from repro.crypto.certificates import CertificateVerifier
from repro.crypto.digest import digest
from repro.crypto.keys import KeyRegistry
from repro.messages.base import Signed, verify_signed
from repro.messages.client import ClientReply, ClientRequest, MigrationRequest
from repro.messages.reads import ReadReply, ReadRequest
from repro.messages.trace import SpanContext, trace_id
from repro.pbft.client import CompletedRequest
from repro.reads import ReadConfig
from repro.sim.events import Simulator
from repro.sim.network import Network
from repro.sim.process import CostModel, Process

__all__ = ["MobileClient"]


class MobileClient(Process):
    """Closed-loop mobile client of a Ziziphus deployment."""

    def __init__(self, sim: Simulator, network: Network, keys: KeyRegistry,
                 client_id: str, directory: ZoneDirectory, home_zone: str,
                 initiator_resolver: Callable[[str, str], str] | None = None,
                 retransmit_ms: float = 4_000.0,
                 read_config: ReadConfig | None = None) -> None:
        super().__init__(sim, client_id,
                         CostModel(base_ms=0.0, verify_ms=0.0))
        self.network = network
        self.keys = keys
        self.directory = directory
        self.current_zone = home_zone
        #: Maps (source_zone, dest_zone) to the initiator zone — the
        #: stable-leader zone for intra-cluster migrations, the destination
        #: zone otherwise. Defaults to the destination zone.
        self.initiator_resolver = initiator_resolver
        self.retransmit_ms = retransmit_ms
        self.timestamp = 0
        self.completed: list[CompletedRequest] = []
        self.on_complete: Callable[[CompletedRequest], None] | None = None
        self.view_hints: dict[str, int] = {}
        self._outstanding: Any = None          # ClientRequest | MigrationRequest
        self._outstanding_zone: str | None = None   # zone whose quorum completes it
        self._started_at = 0.0
        self._replies: dict[bytes, set[str]] = {}
        self._retry_timer = None
        # Certified read path (repro.reads): verified-watermark session
        # vector, in-flight fast-path read, and per-result reply votes.
        self.reads = read_config or ReadConfig()
        self.session: dict[str, int] = {}
        self._verifier = CertificateVerifier(keys)
        self._read_outstanding: ReadRequest | None = None
        self._read_started = 0.0
        self._read_votes: dict[bytes, dict[str, tuple[float, int]]] = {}
        self._read_timer = None
        self._fallback_read = False

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def _primary_hint(self, zone_id: str) -> str:
        zone = self.directory.zone(zone_id)
        return zone.primary(self.view_hints.get(zone_id, 0))

    def _send(self, request: Any, dst: str) -> None:
        envelope = Signed(request, self.keys.sign(self.node_id, digest(request)))
        self.network.send(self.node_id, dst, envelope)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit_local(self, operation: tuple) -> None:
        """Issue a local transaction on this client's data in its zone."""
        self.timestamp += 1
        request = ClientRequest(operation=operation, timestamp=self.timestamp,
                                sender=self.node_id)
        self._launch(request, target_zone=self.current_zone)

    def submit_migration(self, dest_zone: str) -> None:
        """Issue a migration request from the current zone to ``dest_zone``.

        The request goes to the initiator zone's primary: the stable-leader
        zone when configured, otherwise the destination zone (§IV.B.1).
        """
        self.timestamp += 1
        operation = ("migrate", self.node_id, self.current_zone, dest_zone)
        request = MigrationRequest(operation=operation,
                                   timestamp=self.timestamp,
                                   sender=self.node_id,
                                   source_zone=self.current_zone,
                                   dest_zone=dest_zone)
        if self.initiator_resolver is not None:
            initiator = self.initiator_resolver(self.current_zone, dest_zone)
        else:
            initiator = dest_zone
        self._launch(request, target_zone=initiator)

    def submit_cross_zone_transfer(self, peer: str, peer_zone: str,
                                   amount: int) -> None:
        """Issue a cross-zone transaction (§IV.B.3): move ``amount`` from
        this client's account to ``peer`` hosted by ``peer_zone``.

        The client's own zone initiates (it is the paying/prepare zone);
        only the two involved zones participate.
        """
        if peer_zone == self.current_zone:
            self.submit_local(("transfer", peer, amount))
            return
        from repro.core.cross_zone import CrossZoneRequest
        from repro.crypto.digest import digest as _digest
        self.timestamp += 1
        steps = {self.current_zone: ("xz-debit", self.node_id, amount),
                 peer_zone: ("xz-credit", peer, amount)}
        request = CrossZoneRequest(steps=steps, steps_digest=_digest(steps),
                                   prepare_zone=self.current_zone,
                                   timestamp=self.timestamp,
                                   sender=self.node_id)
        self._launch(request, target_zone=self.current_zone)

    # ------------------------------------------------------------------
    # Certified reads (repro.reads): consensus-free, watermark-verified
    # ------------------------------------------------------------------
    def submit_read(self, operation: tuple) -> None:
        """Issue a certified fast-path read in the current zone.

        The request fans out to every zone member; completion requires
        ``f+1`` matching results, each individually backed by a verified
        watermark certificate within the staleness bound. Any timeout,
        verification failure, bound violation, or explicit rejection
        (e.g. the record is mid-migration) falls back to the
        transactional path — the fallback is transparent to the caller.
        """
        if not self.reads.enabled:
            self.submit_local(operation)
            return
        self.timestamp += 1
        zone_id = self.current_zone
        request = ReadRequest(operation=operation, timestamp=self.timestamp,
                              sender=self.node_id,
                              session=((zone_id,
                                        self.session.get(zone_id, 0)),))
        obs = self.obs
        if obs is not None and obs.causal:
            obs.emit(self.sim.now, "txn.submit", node=self.node_id,
                     trace=trace_id(request), zone=zone_id, target=zone_id,
                     txn=self._txn_kind(request))
        self._read_outstanding = request
        self._read_started = self.sim.now
        self._read_votes.clear()
        for member in self.directory.zone(zone_id).members:
            self._send(request, member)
        if self._read_timer is not None:
            self._read_timer.cancel()
        self._read_timer = self.set_timer(self.reads.read_timeout_ms,
                                          self._on_read_timeout)

    def _on_read_timeout(self) -> None:
        if self._read_outstanding is not None:
            self._read_abandon("timeout")

    def _read_abandon(self, reason: str) -> None:
        """Fall back to the transactional path for the in-flight read."""
        request = self._read_outstanding
        self._read_outstanding = None
        if self._read_timer is not None:
            self._read_timer.cancel()
            self._read_timer = None
        obs = self.obs
        if obs is not None:
            obs.emit(self.sim.now, "read.fallback", node=self.node_id,
                     zone=self.current_zone, reason=reason)
        started = self._read_started
        self._fallback_read = True
        self.timestamp += 1
        fallback = ClientRequest(operation=request.operation,
                                 timestamp=self.timestamp,
                                 sender=self.node_id)
        self._launch(fallback, target_zone=self.current_zone)
        # The fallback's latency is charged from the original read
        # submission: the failed fast path is part of the cost.
        self._started_at = started

    def _cert_problem(self, cert, zone) -> str | None:
        """Why a reply's certificate is provably invalid (None if sound)."""
        if cert is None:
            return "missing-cert"
        if cert.zone != zone.zone_id:
            return "wrong-zone"
        if cert.body() != cert.certificate.payload_digest:
            # The cert's claimed (zone, seq, digest, ts) tuple is not the
            # one its quorum signed: a fabricated watermark claim.
            return "claim-mismatch"
        if not self._verifier.is_valid(cert.certificate,
                                       weak_quorum(zone.f),
                                       frozenset(zone.members)):
            return "bad-quorum"
        return None

    def _on_read_reply(self, reply: ReadReply) -> None:
        request = self._read_outstanding
        if request is None or reply.timestamp != request.timestamp:
            return
        zone = self.directory.zone(self.current_zone)
        if reply.sender not in zone.members:
            return
        obs = self.obs
        if reply.status != "ok":
            # An explicit rejection code: the record is mid-migration,
            # the zone has no usable watermark yet, or the operation is
            # not servable — take the transactional path immediately.
            self._read_abandon(reply.status)
            return
        cert = reply.cert
        problem = self._cert_problem(cert, zone)
        if problem is not None:
            if obs is not None:
                obs.emit(self.sim.now, "read.invalid", node=self.node_id,
                         sender=reply.sender, zone=zone.zone_id,
                         reason=problem)
            return
        age_ms = self.sim.now - cert.watermark_ts
        if not self.reads.fresh_ok(age_ms):
            # Genuine but stale certificate: not counted, not flagged —
            # honest replicas (or the fallback timer) keep us live.
            if obs is not None:
                obs.emit(self.sim.now, "read.stale", node=self.node_id,
                         sender=reply.sender, zone=zone.zone_id,
                         age_ms=round(age_ms, 6))
            return
        if cert.sequence < self.session.get(zone.zone_id, 0):
            return   # behind our session vector; wait for fresher replies
        key = digest((reply.result,))
        votes = self._read_votes.setdefault(key, {})
        votes[reply.sender] = (age_ms, cert.sequence)
        if len(votes) < weak_quorum(zone.f):
            return
        self._read_complete(request, reply.result, votes, zone.zone_id)

    def _read_complete(self, request: ReadRequest, result: Any,
                       votes: dict[str, tuple[float, int]],
                       zone_id: str) -> None:
        self._read_outstanding = None
        if self._read_timer is not None:
            self._read_timer.cancel()
            self._read_timer = None
        sequence = max(seq for _, seq in votes.values())
        age_ms = max(age for age, _ in votes.values())
        # Session vector: verified watermarks only, monotonically rising.
        self.session[zone_id] = max(self.session.get(zone_id, 0), sequence)
        record = CompletedRequest(timestamp=request.timestamp,
                                  operation=request.operation,
                                  result=result,
                                  started_at=self._read_started,
                                  completed_at=self.sim.now,
                                  labels={"read": "fast"})
        self.completed.append(record)
        obs = self.obs
        if obs is not None:
            obs.emit(self.sim.now, "read.complete", node=self.node_id,
                     zone=zone_id, sequence=sequence,
                     age_ms=round(age_ms, 6),
                     bound_ms=self.reads.staleness_bound_ms)
            if obs.causal:
                obs.emit(self.sim.now, "txn.reply", node=self.node_id,
                         trace=trace_id(request),
                         latency_ms=round(
                             self.sim.now - self._read_started, 6),
                         txn=self._txn_kind(request))
        if self.on_complete is not None:
            self.on_complete(record)

    @staticmethod
    def _txn_kind(request: Any) -> str:
        if isinstance(request, MigrationRequest):
            return "migration"
        if isinstance(request, ClientRequest):
            return "local"
        if isinstance(request, ReadRequest):
            return "read"
        return "cross-zone"

    def _launch(self, request: Any, target_zone: str) -> None:
        obs = self.obs
        if obs is not None and obs.causal:
            tid = trace_id(request)
            if isinstance(request, (ClientRequest, MigrationRequest)):
                # Stamp the span context onto the wire message. The ctx
                # field is digest-excluded, so the signature below — and
                # every simulated byte downstream — is unchanged.
                request = replace(request, ctx=SpanContext(trace_id=tid))
            obs.emit(self.sim.now, "txn.submit", node=self.node_id,
                     trace=tid, zone=self.current_zone, target=target_zone,
                     txn=self._txn_kind(request))
        self._outstanding = request
        self._outstanding_zone = target_zone
        self._started_at = self.sim.now
        self._replies.clear()
        self._send(request, self._primary_hint(target_zone))
        self._arm_retry()

    def _arm_retry(self) -> None:
        if self._retry_timer is not None:
            self._retry_timer.cancel()
        self._retry_timer = self.set_timer(self.retransmit_ms, self._on_retry)

    def _on_retry(self) -> None:
        request = self._outstanding
        if request is None:
            return
        # Multicast to all nodes of the target zone; non-primaries relay to
        # their primary and start suspecting it (§V-A).
        for node in self.directory.zone(self._outstanding_zone).members:
            self._send(request, node)
        self._arm_retry()

    # ------------------------------------------------------------------
    # Replies
    # ------------------------------------------------------------------
    def on_message(self, sender: str, message: Any) -> None:
        if not isinstance(message, Signed):
            return
        payload = message.payload
        if isinstance(payload, ReadReply):
            if verify_signed(self.keys, message):
                self._on_read_reply(payload)
            return
        if not isinstance(payload, ClientReply):
            return
        if not verify_signed(self.keys, message):
            return
        self._on_reply(payload)

    def _on_reply(self, reply: ClientReply) -> None:
        try:
            sender_zone = self.directory.zone_of(reply.sender)
        except KeyError:
            return
        self.view_hints[sender_zone] = max(
            self.view_hints.get(sender_zone, 0), reply.view)
        request = self._outstanding
        if request is None or reply.timestamp != request.timestamp:
            return
        result = reply.result
        if isinstance(result, tuple) and result and result[0] == "sub1-committed":
            # First sub-transaction committed; final reply comes from the
            # destination zone after the data migration protocol.
            self._arm_retry()
            return
        key = digest((sender_zone, result))
        voters = self._replies.setdefault(key, set())
        voters.add(reply.sender)
        if len(voters) < weak_quorum(self.directory.zone(sender_zone).f):
            return
        self._complete(request, result)

    def _complete(self, request: Any, result: Any) -> None:
        self._outstanding = None
        if self._retry_timer is not None:
            self._retry_timer.cancel()
            self._retry_timer = None
        is_global = isinstance(request, MigrationRequest)
        if is_global and isinstance(result, tuple) and result \
                and result[0] == "migrated":
            self.current_zone = request.dest_zone
            # Physical mobility: the client is now near its new zone.
            self.network.move(self.node_id,
                              self.directory.zone(request.dest_zone).region)
        record = CompletedRequest(timestamp=request.timestamp,
                                  operation=request.operation,
                                  result=result,
                                  started_at=self._started_at,
                                  completed_at=self.sim.now,
                                  is_global=is_global)
        if self._fallback_read:
            record.labels["read"] = "fallback"
            self._fallback_read = False
        self.completed.append(record)
        obs = self.obs
        if obs is not None and obs.causal:
            obs.emit(self.sim.now, "txn.reply", node=self.node_id,
                     trace=trace_id(request),
                     latency_ms=round(self.sim.now - self._started_at, 6),
                     txn=self._txn_kind(request))
        if self.on_complete is not None:
            self.on_complete(record)
