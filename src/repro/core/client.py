"""Mobile Ziziphus client.

A client issues *local* transactions to its current zone and, when it
moves, a *migration request* (global transaction) to the initiator zone's
primary — the destination zone by default, or the stable-leader zone when
that optimisation is on. Completion requires ``f+1`` matching replies from
one zone: the destination zone after the data migration protocol appends
R(c) (successful migration), or the initiator zone when the migration was
rejected by policy.

Following the paper's evaluation methodology, physical mobility is
simulated: the same client identity simply starts addressing its new zone
once the migration completes.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable

from repro.core.quorums import weak_quorum
from repro.core.zone import ZoneDirectory
from repro.crypto.digest import digest
from repro.crypto.keys import KeyRegistry
from repro.messages.base import Signed, verify_signed
from repro.messages.client import ClientReply, ClientRequest, MigrationRequest
from repro.messages.trace import SpanContext, trace_id
from repro.pbft.client import CompletedRequest
from repro.sim.events import Simulator
from repro.sim.network import Network
from repro.sim.process import CostModel, Process

__all__ = ["MobileClient"]


class MobileClient(Process):
    """Closed-loop mobile client of a Ziziphus deployment."""

    def __init__(self, sim: Simulator, network: Network, keys: KeyRegistry,
                 client_id: str, directory: ZoneDirectory, home_zone: str,
                 initiator_resolver: Callable[[str, str], str] | None = None,
                 retransmit_ms: float = 4_000.0) -> None:
        super().__init__(sim, client_id,
                         CostModel(base_ms=0.0, verify_ms=0.0))
        self.network = network
        self.keys = keys
        self.directory = directory
        self.current_zone = home_zone
        #: Maps (source_zone, dest_zone) to the initiator zone — the
        #: stable-leader zone for intra-cluster migrations, the destination
        #: zone otherwise. Defaults to the destination zone.
        self.initiator_resolver = initiator_resolver
        self.retransmit_ms = retransmit_ms
        self.timestamp = 0
        self.completed: list[CompletedRequest] = []
        self.on_complete: Callable[[CompletedRequest], None] | None = None
        self.view_hints: dict[str, int] = {}
        self._outstanding: Any = None          # ClientRequest | MigrationRequest
        self._outstanding_zone: str | None = None   # zone whose quorum completes it
        self._started_at = 0.0
        self._replies: dict[bytes, set[str]] = {}
        self._retry_timer = None

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def _primary_hint(self, zone_id: str) -> str:
        zone = self.directory.zone(zone_id)
        return zone.primary(self.view_hints.get(zone_id, 0))

    def _send(self, request: Any, dst: str) -> None:
        envelope = Signed(request, self.keys.sign(self.node_id, digest(request)))
        self.network.send(self.node_id, dst, envelope)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit_local(self, operation: tuple) -> None:
        """Issue a local transaction on this client's data in its zone."""
        self.timestamp += 1
        request = ClientRequest(operation=operation, timestamp=self.timestamp,
                                sender=self.node_id)
        self._launch(request, target_zone=self.current_zone)

    def submit_migration(self, dest_zone: str) -> None:
        """Issue a migration request from the current zone to ``dest_zone``.

        The request goes to the initiator zone's primary: the stable-leader
        zone when configured, otherwise the destination zone (§IV.B.1).
        """
        self.timestamp += 1
        operation = ("migrate", self.node_id, self.current_zone, dest_zone)
        request = MigrationRequest(operation=operation,
                                   timestamp=self.timestamp,
                                   sender=self.node_id,
                                   source_zone=self.current_zone,
                                   dest_zone=dest_zone)
        if self.initiator_resolver is not None:
            initiator = self.initiator_resolver(self.current_zone, dest_zone)
        else:
            initiator = dest_zone
        self._launch(request, target_zone=initiator)

    def submit_cross_zone_transfer(self, peer: str, peer_zone: str,
                                   amount: int) -> None:
        """Issue a cross-zone transaction (§IV.B.3): move ``amount`` from
        this client's account to ``peer`` hosted by ``peer_zone``.

        The client's own zone initiates (it is the paying/prepare zone);
        only the two involved zones participate.
        """
        if peer_zone == self.current_zone:
            self.submit_local(("transfer", peer, amount))
            return
        from repro.core.cross_zone import CrossZoneRequest
        from repro.crypto.digest import digest as _digest
        self.timestamp += 1
        steps = {self.current_zone: ("xz-debit", self.node_id, amount),
                 peer_zone: ("xz-credit", peer, amount)}
        request = CrossZoneRequest(steps=steps, steps_digest=_digest(steps),
                                   prepare_zone=self.current_zone,
                                   timestamp=self.timestamp,
                                   sender=self.node_id)
        self._launch(request, target_zone=self.current_zone)

    @staticmethod
    def _txn_kind(request: Any) -> str:
        if isinstance(request, MigrationRequest):
            return "migration"
        if isinstance(request, ClientRequest):
            return "local"
        return "cross-zone"

    def _launch(self, request: Any, target_zone: str) -> None:
        obs = self.obs
        if obs is not None and obs.causal:
            tid = trace_id(request)
            if isinstance(request, (ClientRequest, MigrationRequest)):
                # Stamp the span context onto the wire message. The ctx
                # field is digest-excluded, so the signature below — and
                # every simulated byte downstream — is unchanged.
                request = replace(request, ctx=SpanContext(trace_id=tid))
            obs.emit(self.sim.now, "txn.submit", node=self.node_id,
                     trace=tid, zone=self.current_zone, target=target_zone,
                     txn=self._txn_kind(request))
        self._outstanding = request
        self._outstanding_zone = target_zone
        self._started_at = self.sim.now
        self._replies.clear()
        self._send(request, self._primary_hint(target_zone))
        self._arm_retry()

    def _arm_retry(self) -> None:
        if self._retry_timer is not None:
            self._retry_timer.cancel()
        self._retry_timer = self.set_timer(self.retransmit_ms, self._on_retry)

    def _on_retry(self) -> None:
        request = self._outstanding
        if request is None:
            return
        # Multicast to all nodes of the target zone; non-primaries relay to
        # their primary and start suspecting it (§V-A).
        for node in self.directory.zone(self._outstanding_zone).members:
            self._send(request, node)
        self._arm_retry()

    # ------------------------------------------------------------------
    # Replies
    # ------------------------------------------------------------------
    def on_message(self, sender: str, message: Any) -> None:
        if not isinstance(message, Signed):
            return
        if not isinstance(message.payload, ClientReply):
            return
        if not verify_signed(self.keys, message):
            return
        self._on_reply(message.payload)

    def _on_reply(self, reply: ClientReply) -> None:
        try:
            sender_zone = self.directory.zone_of(reply.sender)
        except KeyError:
            return
        self.view_hints[sender_zone] = max(
            self.view_hints.get(sender_zone, 0), reply.view)
        request = self._outstanding
        if request is None or reply.timestamp != request.timestamp:
            return
        result = reply.result
        if isinstance(result, tuple) and result and result[0] == "sub1-committed":
            # First sub-transaction committed; final reply comes from the
            # destination zone after the data migration protocol.
            self._arm_retry()
            return
        key = digest((sender_zone, result))
        voters = self._replies.setdefault(key, set())
        voters.add(reply.sender)
        if len(voters) < weak_quorum(self.directory.zone(sender_zone).f):
            return
        self._complete(request, result)

    def _complete(self, request: Any, result: Any) -> None:
        self._outstanding = None
        if self._retry_timer is not None:
            self._retry_timer.cancel()
            self._retry_timer = None
        is_global = isinstance(request, MigrationRequest)
        if is_global and isinstance(result, tuple) and result \
                and result[0] == "migrated":
            self.current_zone = request.dest_zone
            # Physical mobility: the client is now near its new zone.
            self.network.move(self.node_id,
                              self.directory.zone(request.dest_zone).region)
        record = CompletedRequest(timestamp=request.timestamp,
                                  operation=request.operation,
                                  result=result,
                                  started_at=self._started_at,
                                  completed_at=self.sim.now,
                                  is_global=is_global)
        self.completed.append(record)
        obs = self.obs
        if obs is not None and obs.causal:
            obs.emit(self.sim.now, "txn.reply", node=self.node_id,
                     trace=trace_id(request),
                     latency_ms=round(self.sim.now - self._started_at, 6),
                     txn=self._txn_kind(request))
        if self.on_complete is not None:
            self.on_complete(record)
